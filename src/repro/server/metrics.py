"""Prometheus-style metrics for the serving gateway (stdlib only).

A deliberately small subset of the Prometheus client model — counters,
gauges and fixed-bucket histograms rendered in the text exposition format
(``text/plain; version=0.0.4``) — so the gateway's ``GET /metrics`` can be
scraped by a real Prometheus without adding a dependency.  All mutation is
lock-protected: samples arrive from the engine-runner thread while scrapes
render on the event-loop thread.

:class:`GatewayMetrics` wires the generic primitives to the serving
stack: request/streaming counters fed by the HTTP frontend, TTFT and
per-token-latency histograms fed from the engine's drained timing samples
(:meth:`repro.serving.engine.ServingEngine.drain_timing_samples` — no
monkey-patching), and scheduler/cache gauges mirrored from
``ServingEngine.serving_stats()`` at scrape time.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "GatewayMetrics",
    "TTFT_BUCKETS",
    "TOKEN_LATENCY_BUCKETS",
]

#: Default TTFT histogram buckets (seconds): sub-millisecond tiny-model
#: tests through multi-second edge-device prefills.
TTFT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                0.5, 1.0, 2.5, 5.0, 10.0)

#: Default per-token (decode-step wall time) buckets, in seconds.
TOKEN_LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
                         0.05, 0.1, 0.25, 0.5, 1.0)


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (ints bare)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(label_names: Sequence[str],
                   label_values: Sequence[str]) -> str:
    if not label_names:
        return ""
    pairs = ",".join(f'{name}="{value}"'
                     for name, value in zip(label_names, label_values))
    return "{" + pairs + "}"


class _Metric:
    """Base: name, help text, a lock, and the exposition-format header."""

    metric_type = "untyped"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()

    def _header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.metric_type}",
        ]

    def render(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """Monotonic counter, optionally labelled.

    ``inc()`` adds locally-observed events; ``set_total()`` mirrors a
    cumulative counter owned elsewhere (the engine's preemption count,
    for instance) without double-counting across scrapes.
    """

    metric_type = "counter"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()):
        super().__init__(name, help_text)
        self.label_names = tuple(label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_total(self, value: float, **labels: str) -> None:
        """Overwrite the cumulative value (mirroring an external counter)."""
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                f"{self.name}{_format_labels(self.label_names, key)} "
                f"{_format_value(value)}"
            )
        return lines


class Gauge(_Metric):
    """A value that goes up and down (queue depth, free pages, ...)."""

    metric_type = "gauge"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> List[str]:
        return self._header() + [
            f"{self.name} {_format_value(self.value())}"
        ]


class Histogram(_Metric):
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``observe(v)`` increments every bucket whose upper bound is >= v plus
    the implicit ``+Inf`` bucket, and accumulates ``_sum``/``_count``.
    """

    metric_type = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float]):
        super().__init__(name, help_text)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._bucket_counts = [0] * len(bounds)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[i] += 1
            self._count += 1
            self._sum += value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket).

        Good enough for test assertions and dashboards; the raw samples
        are not retained (Prometheus-style histograms never do).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            for bound, cumulative in zip(self.bounds, self._bucket_counts):
                if cumulative >= rank:
                    return bound
            return self.bounds[-1]

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            for bound, cumulative in zip(self.bounds, self._bucket_counts):
                lines.append(
                    f'{self.name}_bucket{{le="{_format_value(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(f'{self.name}_bucket{{le="+Inf"}} {self._count}')
            lines.append(f"{self.name}_sum {_format_value(self._sum)}")
            lines.append(f"{self.name}_count {self._count}")
        return lines


class MetricsRegistry:
    """Ordered collection of metrics with one-shot text rendering."""

    def __init__(self):
        self._metrics: List[_Metric] = []
        self._names: set = set()

    def register(self, metric: _Metric) -> _Metric:
        if metric.name in self._names:
            raise ValueError(f"duplicate metric name {metric.name!r}")
        self._names.add(metric.name)
        self._metrics.append(metric)
        return metric

    def counter(self, name: str, help_text: str,
                label_names: Sequence[str] = ()) -> Counter:
        return self.register(Counter(name, help_text, label_names))

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self.register(Gauge(name, help_text))

    def histogram(self, name: str, help_text: str,
                  buckets: Sequence[float]) -> Histogram:
        return self.register(Histogram(name, help_text, buckets))

    def render(self) -> str:
        lines: List[str] = []
        for metric in self._metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


class GatewayMetrics:
    """The serving gateway's metric set over one :class:`MetricsRegistry`.

    The HTTP frontend feeds the request counters, the engine runner feeds
    the latency histograms from drained engine samples, and
    :meth:`observe_engine` mirrors the scheduler/cache counters from a
    ``serving_stats()`` snapshot (called after steps and at scrape time).
    """

    def __init__(self, namespace: str = "gateway"):
        ns = namespace
        registry = MetricsRegistry()
        self.registry = registry
        self.http_requests = registry.counter(
            f"{ns}_http_requests_total",
            "HTTP requests handled, by path and status code.",
            label_names=("path", "status"))
        self.backpressure_rejections = registry.counter(
            f"{ns}_backpressure_rejections_total",
            "Completions rejected with 429 because the admission queue "
            "was full.")
        self.client_disconnects = registry.counter(
            f"{ns}_client_disconnects_total",
            "Streaming requests cancelled because the client went away.")
        self.streamed_tokens = registry.counter(
            f"{ns}_streamed_tokens_total",
            "Tokens delivered over streaming responses.")
        self.completed_requests = registry.counter(
            f"{ns}_completed_requests_total",
            "Completions finished, by finish_reason.",
            label_names=("reason",))
        self.ttft = registry.histogram(
            f"{ns}_ttft_seconds",
            "Time from request submission to its first generated token.",
            buckets=TTFT_BUCKETS)
        self.token_latency = registry.histogram(
            f"{ns}_token_latency_seconds",
            "Wall time of one batched decode step (per-token latency).",
            buckets=TOKEN_LATENCY_BUCKETS)
        self.queue_depth = registry.gauge(
            f"{ns}_queue_depth",
            "Requests waiting for engine admission.")
        self.active_sessions = registry.gauge(
            f"{ns}_active_sessions",
            "Sessions currently decoding.")
        self.prefilling_sessions = registry.gauge(
            f"{ns}_prefilling_sessions",
            "Admitted sessions still working through their prompt.")
        self.kv_free_pages = registry.gauge(
            f"{ns}_kv_free_pages",
            "Free pages in the KV pool (-1 when the engine is unpaged).")
        self.preemptions = registry.counter(
            f"{ns}_preemptions_total",
            "Sessions preempted and requeued for recompute (engine "
            "counter).")
        self.capacity_failures = registry.counter(
            f"{ns}_capacity_failures_total",
            "Sessions failed because the KV pool can never hold their "
            "next step (engine counter).")
        self.deadline_expirations = registry.counter(
            f"{ns}_deadline_expirations_total",
            "Requests expired past their deadline (engine counter).")
        self.plan_cache_hit_rate = registry.gauge(
            f"{ns}_plan_cache_hit_rate",
            "Process-wide kernel-plan cache hit rate.")
        self.prefix_cache_hit_rate = registry.gauge(
            f"{ns}_prefix_cache_hit_rate",
            "Fraction of prompt tokens served from shared prefix pages "
            "(-1 when prefix caching is off).")
        self.process_dispatches = registry.counter(
            f"{ns}_process_executor_dispatches_total",
            "mpGEMM calls dispatched to the worker-process pool "
            "(process-wide executor counter).")
        self.process_fallbacks = registry.counter(
            f"{ns}_process_executor_fallbacks_total",
            "Process-executor calls that fell back to the serial path "
            "(below threshold or shared memory unavailable).")
        self.process_worker_restarts = registry.counter(
            f"{ns}_process_worker_restarts_total",
            "Dead mpGEMM worker processes respawned by the pool.")
        self.process_shm_segments = registry.gauge(
            f"{ns}_process_shm_segments",
            "Live shared-memory segments (published plans + scratch "
            "arenas).")
        self.process_shm_bytes = registry.gauge(
            f"{ns}_process_shm_bytes",
            "Bytes held in shared-memory segments.")
        self.specialize_builds = registry.counter(
            f"{ns}_specialized_kernel_builds_total",
            "Specialized codes-dot kernels compiled (one per plan + "
            "table mode; process-wide counter).")
        self.specialize_calls = registry.counter(
            f"{ns}_specialized_span_calls_total",
            "Span executions routed through a compiled specialized "
            "kernel.")
        self.specialize_int8_calls = registry.counter(
            f"{ns}_specialized_int8_span_calls_total",
            "Specialized span executions that ran the integer-domain "
            "(int8 LUT) decode path.")

    def observe_timing(self, samples: Dict[str, List[float]]) -> None:
        """Feed drained engine timing samples into the histograms."""
        self.ttft.observe_many(samples.get("ttft_s", ()))
        self.token_latency.observe_many(samples.get("decode_step_s", ()))

    def observe_engine(self, stats: Dict[str, float],
                       queue_depth: Optional[int] = None) -> None:
        """Mirror one ``ServingEngine.serving_stats()`` snapshot."""
        self.queue_depth.set(queue_depth if queue_depth is not None
                             else stats.get("queue_depth", 0))
        self.preemptions.set_total(stats.get("preemptions", 0))
        self.capacity_failures.set_total(stats.get("capacity_failures", 0))
        self.deadline_expirations.set_total(
            stats.get("deadline_expirations", 0))
        hits = stats.get("global_plan_cache_hits", 0)
        misses = stats.get("global_plan_cache_misses", 0)
        total = hits + misses
        self.plan_cache_hit_rate.set(hits / total if total else 0.0)
        self.prefix_cache_hit_rate.set(stats.get("prefix_hit_rate", -1.0))
        self.kv_free_pages.set(stats.get("kv_free_blocks", -1.0))
        self.process_dispatches.set_total(stats.get("process_dispatches", 0))
        self.process_fallbacks.set_total(
            stats.get("process_serial_fallbacks", 0))
        self.process_worker_restarts.set_total(
            stats.get("process_worker_restarts", 0))
        self.process_shm_segments.set(stats.get("process_shm_segments", 0))
        self.process_shm_bytes.set(stats.get("process_shm_bytes", 0))
        self.specialize_builds.set_total(stats.get("specialize_builds", 0))
        self.specialize_calls.set_total(stats.get("specialize_calls", 0))
        self.specialize_int8_calls.set_total(
            stats.get("specialize_int8_calls", 0))

    def observe_counts(self, active: int, prefilling: int) -> None:
        self.active_sessions.set(active)
        self.prefilling_sessions.set(prefilling)

    def render(self) -> str:
        """The full ``GET /metrics`` payload (Prometheus text format)."""
        return self.registry.render()
