"""Wire protocol of the serving gateway: OpenAI-style completions + SSE.

The gateway speaks a token-id dialect of the OpenAI completions API — the
reproduction has no tokenizer, so ``prompt`` is a list of token ids and
streamed chunks carry token ids.  This module owns everything about the
wire shape and nothing about scheduling:

* :class:`CompletionRequest` — strict parsing/validation of the POST
  body.  Unknown fields are rejected (a typo'd ``"temprature"`` silently
  sampling greedily is the worst kind of bug), type errors carry the
  field name, and semantic validation (temperature range etc.) is left
  to :class:`repro.serving.session.SamplingParams` so there is exactly
  one source of truth.
* Response builders for the non-streaming JSON body, the per-token SSE
  chunks and the terminal chunk, plus the ``data: [DONE]`` sentinel that
  ends every stream (OpenAI convention).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "ProtocolError",
    "CompletionRequest",
    "completion_body",
    "chunk_body",
    "error_body",
    "sse_event",
    "parse_sse_payload",
    "SSE_DONE",
]

#: Stream terminator, after the terminal chunk (OpenAI convention).
SSE_DONE = b"data: [DONE]\n\n"


class ProtocolError(ValueError):
    """A malformed request body; maps to HTTP 400."""


def _require(obj: Dict[str, Any], key: str, types, default):
    value = obj.get(key, default)
    if value is default and key not in obj:
        return default
    if isinstance(value, bool) and bool not in (
            types if isinstance(types, tuple) else (types,)):
        # bool is an int subclass; "max_tokens": true must not parse.
        raise ProtocolError(f"field {key!r} has the wrong type")
    if not isinstance(value, types):
        raise ProtocolError(f"field {key!r} has the wrong type")
    return value


def _token_list(value: Any, key: str) -> List[int]:
    if not isinstance(value, list) or not all(
            isinstance(t, int) and not isinstance(t, bool) for t in value):
        raise ProtocolError(f"field {key!r} must be a list of token ids")
    return [int(t) for t in value]


@dataclass(frozen=True)
class CompletionRequest:
    """A validated ``POST /v1/completions`` body."""

    prompt: Tuple[int, ...]
    max_tokens: int = 16
    temperature: float = 0.0
    top_k: int = 0
    stop: Tuple[int, ...] = ()
    stream: bool = False
    seed: int = 0
    priority: int = 0
    #: Request deadline in seconds from submission; ``None`` falls back
    #: to the gateway's ``default_timeout_s``.
    timeout_s: Optional[float] = None

    _FIELDS = frozenset({
        "prompt", "max_tokens", "max_new_tokens", "temperature", "top_k",
        "stop", "stream", "seed", "priority", "timeout",
    })

    @classmethod
    def from_json(cls, obj: Any) -> "CompletionRequest":
        if not isinstance(obj, dict):
            raise ProtocolError("request body must be a JSON object")
        unknown = set(obj) - cls._FIELDS
        if unknown:
            raise ProtocolError(
                f"unknown fields: {sorted(unknown)} (accepted: "
                f"{sorted(cls._FIELDS)})"
            )
        if "prompt" not in obj:
            raise ProtocolError("field 'prompt' is required")
        prompt = _token_list(obj["prompt"], "prompt")
        if not prompt:
            raise ProtocolError("field 'prompt' must be non-empty")
        if "max_tokens" in obj and "max_new_tokens" in obj:
            raise ProtocolError(
                "give either 'max_tokens' or 'max_new_tokens', not both")
        max_tokens = _require(obj, "max_tokens", int, 16)
        if "max_new_tokens" in obj:
            max_tokens = _require(obj, "max_new_tokens", int, 16)
        temperature = float(_require(obj, "temperature", (int, float), 0.0))
        top_k = _require(obj, "top_k", int, 0)
        stop_raw = obj.get("stop", [])
        if isinstance(stop_raw, int) and not isinstance(stop_raw, bool):
            stop_raw = [stop_raw]
        stop = tuple(_token_list(stop_raw, "stop"))
        stream = _require(obj, "stream", bool, False)
        seed = _require(obj, "seed", int, 0)
        priority = _require(obj, "priority", int, 0)
        timeout_s = obj.get("timeout")
        if timeout_s is not None:
            if isinstance(timeout_s, bool) or \
                    not isinstance(timeout_s, (int, float)):
                raise ProtocolError("field 'timeout' must be a number")
            timeout_s = float(timeout_s)
            if timeout_s <= 0:
                raise ProtocolError("field 'timeout' must be > 0 seconds")
        return cls(prompt=tuple(prompt), max_tokens=max_tokens,
                   temperature=temperature, top_k=top_k, stop=stop,
                   stream=stream, seed=seed, priority=priority,
                   timeout_s=timeout_s)


# ---------------------------------------------------------------------- #
# Response bodies
# ---------------------------------------------------------------------- #

def completion_body(request_id: int, model: str, prompt_tokens: int,
                    generated_tokens: List[int],
                    finish_reason: str) -> Dict[str, Any]:
    """The non-streaming ``text_completion`` response body."""
    return {
        "id": f"cmpl-{request_id}",
        "object": "text_completion",
        "model": model,
        "choices": [{
            "index": 0,
            "tokens": list(generated_tokens),
            "finish_reason": finish_reason,
        }],
        "usage": {
            "prompt_tokens": prompt_tokens,
            "completion_tokens": len(generated_tokens),
            "total_tokens": prompt_tokens + len(generated_tokens),
        },
    }


def chunk_body(request_id: int, model: str, index: int,
               token: Optional[int],
               finish_reason: Optional[str] = None) -> Dict[str, Any]:
    """One streaming chunk: a token event or the terminal event."""
    return {
        "id": f"cmpl-{request_id}",
        "object": "text_completion.chunk",
        "model": model,
        "choices": [{
            "index": 0,
            "token": token,
            "token_index": index,
            "finish_reason": finish_reason,
        }],
    }


def error_body(message: str, error_type: str = "invalid_request_error",
               **extra: Any) -> Dict[str, Any]:
    body: Dict[str, Any] = {
        "error": {"message": message, "type": error_type}
    }
    body["error"].update(extra)
    return body


# ---------------------------------------------------------------------- #
# SSE framing
# ---------------------------------------------------------------------- #

def sse_event(payload: Dict[str, Any]) -> bytes:
    """Frame one JSON payload as a server-sent event."""
    return b"data: " + json.dumps(payload, separators=(",", ":")).encode() \
        + b"\n\n"


def parse_sse_payload(event: str) -> Optional[Dict[str, Any]]:
    """Parse one SSE event body; ``None`` for the ``[DONE]`` sentinel."""
    data = event[len("data: "):] if event.startswith("data: ") else event
    data = data.strip()
    if data == "[DONE]":
        return None
    return json.loads(data)
