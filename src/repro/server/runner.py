"""The engine runner: a dedicated thread that owns the serving engine.

:class:`repro.serving.engine.ServingEngine` is single-threaded by design
— every piece of scheduling state is mutated inside :meth:`step`.  The
gateway is an asyncio event loop.  :class:`EngineRunner` is the bridge:
it runs the engine on one background thread, and everything the frontend
wants from the engine (submit, cancel, introspection) is shipped to that
thread as a closure and returned through a
:class:`concurrent.futures.Future` — so the engine never sees a second
thread, and the event loop never blocks on a decode step.

Per-token streaming flows the other way: the ``stream_hook`` a caller
passes to :meth:`submit` is invoked *on the runner thread* the moment a
decode step produces the token (the engine publishes inside
:meth:`step`); the gateway wraps its hooks in
``loop.call_soon_threadsafe`` to hop back onto the event loop.

After every step the runner drains the engine's TTFT / decode-wall
samples into the gateway metrics histograms — the satellite contract that
keeps ``/metrics`` free of engine monkey-patching.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Any, Callable, Dict, Optional

from repro.serving.engine import ServingEngine

from repro.server.metrics import GatewayMetrics

__all__ = ["EngineRunner"]


class EngineRunner:
    """Drive a :class:`ServingEngine` on a dedicated background thread."""

    def __init__(self, engine: ServingEngine,
                 metrics: Optional[GatewayMetrics] = None,
                 poll_interval_s: float = 0.002):
        if poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be > 0, got {poll_interval_s}")
        self.engine = engine
        self.metrics = metrics
        self.poll_interval_s = poll_interval_s
        self._commands: "queue.Queue" = queue.Queue()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="engine-runner", daemon=True)
        self.steps = 0
        #: Engine steps that raised (the loop cancels all live sessions
        #: and keeps serving — a scheduler bug must not hang clients).
        self.step_failures = 0
        self.last_step_error = None
        self._started = False
        #: Submits shipped but not yet executed on the engine thread —
        #: counted separately from other commands so admission control
        #: does not mistake metrics scrapes for queued requests.  Bumped
        #: on caller threads and decremented on the runner thread, so the
        #: counter has its own lock (unsynchronized "x += 1" from two
        #: threads can lose updates and skew admission forever).
        self._pending_submits = 0
        self._pending_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "EngineRunner":
        if self._started:
            raise RuntimeError("runner already started")
        self._started = True
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the loop (pending commands are drained first, work is not)."""
        self._stop.set()
        self._commands.put(None)  # wake a blocked get()
        if self._thread.is_alive():
            self._thread.join(timeout)

    def __enter__(self) -> "EngineRunner":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    @property
    def queue_depth(self) -> int:
        """Requests waiting for admission plus submits not yet executed.

        Only *request* work counts: stats/cancel/reap commands are
        transient and must not trip 429 backpressure.  The two terms are
        read independently — admission control only needs a bound, not an
        atomic snapshot across engine and runner.
        """
        with self._pending_lock:
            pending = self._pending_submits
        return self.engine.num_waiting + pending

    # ------------------------------------------------------------------ #
    # Thread-shipped operations
    # ------------------------------------------------------------------ #

    def call(self, fn: Callable[[ServingEngine], Any]) -> "Future":
        """Run ``fn(engine)`` on the runner thread; resolve its result.

        The only way the frontend touches the engine: submissions,
        cancels, stats snapshots and test introspection all go through
        here, so every engine access happens on the thread that owns it.
        """
        if not self._started:
            raise RuntimeError(
                "engine runner not started; call start() first")
        future: "Future" = Future()
        self._commands.put((fn, future))
        if not self.alive and not future.done():
            # The loop already exited: fail fast instead of hanging.  The
            # guard races with the final drain, which may have resolved
            # the future between the checks — that resolution wins.
            try:
                future.set_exception(RuntimeError("engine runner is stopped"))
            except Exception:
                pass
        return future

    def submit(self, *, stream_hook=None, timeout_s: Optional[float] = None,
               **request: Any) -> "Future":
        """Submit a generation request; resolves to the session id.

        ``timeout_s`` (seconds from now) is converted to an absolute
        engine-clock deadline on the runner thread, so gateway and engine
        never compare timestamps from different clocks.
        """

        def op(engine: ServingEngine) -> int:
            with self._pending_lock:
                self._pending_submits -= 1
            deadline = (engine.clock() + timeout_s
                        if timeout_s is not None else None)
            return engine.submit(stream_hook=stream_hook,
                                 deadline=deadline, **request)

        with self._pending_lock:
            self._pending_submits += 1
        try:
            return self.call(op)
        except BaseException:
            with self._pending_lock:
                self._pending_submits -= 1
            raise

    def cancel(self, session_id: int) -> "Future":
        """Cancel a session; resolves to its partial result.

        Resolves to ``None`` when the session already finished or is
        unknown — the benign disconnect races (client drops right as the
        final token lands), which must not surface as errors.
        """

        def op(engine: ServingEngine):
            try:
                return engine.cancel(session_id)
            except (KeyError, ValueError):
                return None

        return self.call(op)

    def reap(self, session_id: int) -> "Future":
        """Drop one session's bookkeeping once its request is answered.

        Finished sessions are ``release()``d (the engine keeps them until
        someone collects the result — without this, a long-running
        gateway's session table grows with every completed request);
        still-running ones (a handler bailed out without finishing the
        stream) are cancelled.  Gone-already resolves to ``None``.
        """

        def op(engine: ServingEngine):
            session = engine.sessions.get(session_id)
            if session is None:
                return None
            try:
                if session.finished:
                    return engine.release(session_id)
                return engine.cancel(session_id)
            except (KeyError, ValueError):
                return None

        return self.call(op)

    def stats(self) -> "Future":
        """Resolve to a consistent engine stats + counts snapshot."""

        def op(engine: ServingEngine) -> Dict[str, Any]:
            return {
                "serving": engine.serving_stats(),
                "active": engine.num_active,
                "prefilling": engine.num_prefilling,
                "waiting": engine.num_waiting,
                "has_work": engine.has_work,
                "step_failures": self.step_failures,
            }

        return self.call(op)

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #

    def _run(self) -> None:
        while not self._stop.is_set():
            executed = self._drain_commands()
            if self.engine.has_work:
                try:
                    self.engine.step()
                    self.steps += 1
                    self._after_step()
                except Exception as exc:
                    # A step that dies must not kill the loop: clients
                    # are blocked on terminal events only the engine can
                    # publish.  Cancel every live session (which emits
                    # those events and frees pages) and keep serving.
                    self.step_failures += 1
                    self.last_step_error = exc
                    self._abort_live_sessions()
            elif not executed:
                # Idle: block briefly on the command queue instead of
                # spinning; a submit wakes the loop immediately.
                try:
                    command = self._commands.get(
                        timeout=self.poll_interval_s)
                except queue.Empty:
                    continue
                self._execute(command)
        self._drain_commands()

    def _drain_commands(self) -> bool:
        executed = False
        while True:
            try:
                command = self._commands.get_nowait()
            except queue.Empty:
                return executed
            executed = self._execute(command) or executed

    def _execute(self, command) -> bool:
        if command is None:  # stop() wake-up sentinel
            return False
        fn, future = command
        if not future.set_running_or_notify_cancel():
            return False
        try:
            future.set_result(fn(self.engine))
        except BaseException as exc:  # deliver, don't kill the loop
            future.set_exception(exc)
        return True

    def _abort_live_sessions(self) -> None:
        """Best-effort cancel of every unfinished session after a step
        failure, so blocked clients receive their terminal events."""
        for session_id in list(self.engine.sessions):
            session = self.engine.sessions.get(session_id)
            if session is None or session.finished:
                continue
            try:
                self.engine.cancel(session_id)
            except Exception:
                pass

    def _after_step(self) -> None:
        if self.metrics is None:
            return
        self.metrics.observe_timing(self.engine.drain_timing_samples())
        self.metrics.observe_counts(self.engine.num_active,
                                    self.engine.num_prefilling)
        self.metrics.queue_depth.set(self.engine.num_waiting)
