"""Async streaming serving gateway over the continuous-batching engine.

The paper's claim is that LUT-based mpGEMM makes edge CPUs viable LLM
*servers*; :mod:`repro.serving` supplies the batching engine, and this
subpackage supplies the service layer real traffic needs — the ROADMAP's
"heavy traffic from millions of users" north star scaled to the
reproduction:

* :mod:`repro.server.runner` — :class:`EngineRunner`: owns
  ``ServingEngine.step()`` on a dedicated thread; every engine access is
  shipped there as a closure, per-token events flow back through the
  engine's stream hooks.
* :mod:`repro.server.gateway` — :class:`Gateway`: stdlib-asyncio HTTP
  frontend (``POST /v1/completions`` with SSE streaming, ``GET
  /healthz``, ``GET /metrics``) and :func:`serve_model` to build the
  whole stack.
* :mod:`repro.server.queue` — bounded admission (HTTP 429 +
  ``Retry-After`` backpressure) and per-request TTFT/TPOT bookkeeping.
* :mod:`repro.server.protocol` — request validation, completion/chunk
  bodies, SSE framing.
* :mod:`repro.server.metrics` — Prometheus-text counters, gauges and
  histograms (TTFT, per-token latency, queue depth, preemptions,
  capacity failures, cache hit rates).
* :mod:`repro.server.client` — the stdlib asyncio client the tests,
  demo and latency benchmark drive the gateway with.

Streaming never perturbs results: tokens come out of the same engine
step loop the in-process tests drive, so the concatenated stream of each
request is token-identical to a sequential temperature-0
:class:`repro.llm.inference.Generator` run — asserted end-to-end over
HTTP in ``tests/server/test_gateway.py``.
"""

from repro.server.gateway import Gateway, serve_model
from repro.server.metrics import GatewayMetrics
from repro.server.protocol import CompletionRequest, ProtocolError
from repro.server.queue import QueueFull, RequestLifecycle, RequestTicket
from repro.server.runner import EngineRunner

__all__ = [
    "Gateway",
    "serve_model",
    "EngineRunner",
    "GatewayMetrics",
    "CompletionRequest",
    "ProtocolError",
    "QueueFull",
    "RequestLifecycle",
    "RequestTicket",
]
