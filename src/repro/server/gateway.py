"""The asyncio HTTP frontend of the serving gateway.

A deliberately small HTTP/1.1 server on raw ``asyncio`` streams (stdlib
only — the container rule) exposing three endpoints:

* ``POST /v1/completions`` — OpenAI-style completions over token ids
  (:mod:`repro.server.protocol`).  With ``"stream": true`` the response
  is ``text/event-stream`` over chunked transfer encoding: one SSE chunk
  per generated token *as the decode step produces it*, a terminal chunk
  carrying ``finish_reason``, then ``data: [DONE]``.  Without streaming,
  the request blocks until the generation finishes and returns one JSON
  body.
* ``GET /healthz`` — liveness: runner thread state, step count, work
  counts.
* ``GET /metrics`` — Prometheus text format
  (:mod:`repro.server.metrics`).

Lifecycle semantics, in terms of the layers below:

* **Backpressure** — admission is bounded by
  :class:`repro.server.queue.RequestLifecycle`; a full queue yields HTTP
  429 with a ``Retry-After`` hint instead of unbounded buffering, and the
  engine loop never sees the rejected request.
* **Deadlines / priorities** — ``timeout`` and ``priority`` fields ride
  the request into the engine's priority-aware admission queue; an
  expired request comes back with ``finish_reason == "deadline"``.
* **Disconnects** — a client that goes away mid-stream (EOF on its
  connection, or a failed write) gets its session cancelled on the
  engine thread, which releases every KV page the session held (shared
  pages survive via refcounts).  Disconnect-before-admission cancels the
  still-queued session the same way.

One request per connection (``Connection: close``): serving-gateway
clients hold a connection per in-flight completion anyway, and it keeps
the parser honest.

Determinism: the gateway adds no sampling of its own — tokens come out of
the same engine step loop the in-process tests drive, so streamed tokens
concatenated per request are token-identical to a sequential
:class:`repro.llm.inference.Generator` run (asserted end-to-end over HTTP
in ``tests/server/test_gateway.py``).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.core.config import GatewayConfig
from repro.llm.inference import StreamAssembler
from repro.llm.model import TransformerModel
from repro.serving.engine import ServingEngine

from repro.server.metrics import GatewayMetrics
from repro.server.protocol import (
    SSE_DONE,
    CompletionRequest,
    ProtocolError,
    chunk_body,
    completion_body,
    error_body,
    sse_event,
)
from repro.server.queue import QueueFull, RequestLifecycle
from repro.server.runner import EngineRunner

__all__ = ["Gateway", "serve_model"]

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 504: "Gateway Timeout",
}

#: Caps on the request head, so a client streaming endless header lines
#: cannot grow per-connection memory without bound (max_body_bytes only
#: bounds the body).
MAX_HEADER_LINES = 128
MAX_HEADER_BYTES = 32 * 1024


def _chunk(data: bytes) -> bytes:
    """Frame one piece of a chunked transfer-encoded body."""
    return f"{len(data):X}\r\n".encode() + data + b"\r\n"


_LAST_CHUNK = b"0\r\n\r\n"


class _BadRequest(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


async def _read_request(reader: asyncio.StreamReader, max_body: int,
                        ) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 request: (method, path, headers, body)."""
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionResetError("client closed before sending a request")
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest(400, "malformed request line")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        header_bytes += len(line)
        if len(headers) >= MAX_HEADER_LINES or \
                header_bytes > MAX_HEADER_BYTES:
            raise _BadRequest(431, "too many / too large header fields")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length_raw = headers.get("content-length", "0")
    try:
        length = int(length_raw)
    except ValueError:
        raise _BadRequest(400, f"bad Content-Length {length_raw!r}")
    if length < 0:
        raise _BadRequest(400, f"bad Content-Length {length_raw!r}")
    if length > max_body:
        raise _BadRequest(413, f"body exceeds {max_body} bytes")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


class Gateway:
    """HTTP frontend over an :class:`EngineRunner`."""

    def __init__(self, runner: EngineRunner,
                 config: Optional[GatewayConfig] = None,
                 metrics: Optional[GatewayMetrics] = None,
                 model_name: str = "repro-tmac"):
        self.runner = runner
        self.config = config or GatewayConfig()
        self.metrics = metrics if metrics is not None else (
            runner.metrics or GatewayMetrics(self.config.metrics_namespace))
        if runner.metrics is None:
            runner.metrics = self.metrics
        self.model_name = model_name
        self.lifecycle = RequestLifecycle(
            max_queue_depth=self.config.max_queue_depth,
            retry_after_s=self.config.retry_after_s,
        )
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------ #
    # Server lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns (host, port) actually bound."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("gateway not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        status = 500
        path = "?"
        try:
            try:
                method, path, headers, body = await _read_request(
                    reader, self.config.max_body_bytes)
            except _BadRequest as exc:
                status = exc.status
                await self._respond_json(writer, exc.status,
                                         error_body(str(exc)))
                return
            path = path.split("?", 1)[0]
            if path == "/healthz" and method == "GET":
                status = await self._healthz(writer)
            elif path == "/metrics" and method == "GET":
                status = await self._metrics(writer)
            elif path == "/v1/completions" and method == "POST":
                status = await self._completions(reader, writer, body)
            elif path in ("/healthz", "/metrics", "/v1/completions"):
                status = 405
                await self._respond_json(
                    writer, 405, error_body(f"method {method} not allowed"))
            else:
                status = 404
                await self._respond_json(
                    writer, 404, error_body(f"no route for {path}"))
        except (ConnectionResetError, asyncio.IncompleteReadError,
                BrokenPipeError):
            status = 499  # client went away; nothing to answer
        except Exception as exc:  # never take the server down
            status = 500
            try:
                await self._respond_json(
                    writer, 500, error_body(f"internal error: {exc}",
                                            error_type="server_error"))
            except Exception:
                pass
        finally:
            # Unmatched paths collapse into one label: the path is
            # client-controlled, and per-path Prometheus series must not
            # grow with whatever a port scanner probes.
            known = ("/healthz", "/metrics", "/v1/completions")
            self.metrics.http_requests.inc(
                path=path if path in known else "other",
                status=str(status))
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    # ------------------------------------------------------------------ #
    # Plain endpoints
    # ------------------------------------------------------------------ #

    async def _healthz(self, writer: asyncio.StreamWriter) -> int:
        snapshot = await asyncio.wrap_future(self.runner.stats())
        payload = {
            "status": "ok" if self.runner.alive else "dead",
            "steps": self.runner.steps,
            "step_failures": snapshot["step_failures"],
            "active": snapshot["active"],
            "prefilling": snapshot["prefilling"],
            "waiting": snapshot["waiting"],
        }
        status = 200 if self.runner.alive else 500
        await self._respond_json(writer, status, payload)
        return status

    async def _metrics(self, writer: asyncio.StreamWriter) -> int:
        # Refresh the engine-mirrored gauges with a consistent snapshot
        # taken on the engine thread, then render.
        snapshot = await asyncio.wrap_future(self.runner.stats())
        self.metrics.observe_engine(snapshot["serving"],
                                    queue_depth=snapshot["waiting"])
        self.metrics.observe_counts(snapshot["active"],
                                    snapshot["prefilling"])
        body = self.metrics.render().encode()
        await self._respond_raw(
            writer, 200, body,
            content_type="text/plain; version=0.0.4; charset=utf-8")
        return 200

    # ------------------------------------------------------------------ #
    # Completions
    # ------------------------------------------------------------------ #

    async def _completions(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           body: bytes) -> int:
        try:
            request = CompletionRequest.from_json(json.loads(body or b"{}"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            await self._respond_json(writer, 400,
                                     error_body(f"invalid JSON: {exc}"))
            return 400
        except ProtocolError as exc:
            await self._respond_json(writer, 400, error_body(str(exc)))
            return 400

        timeout_s = request.timeout_s
        if timeout_s is None:
            timeout_s = self.config.default_timeout_s
        try:
            ticket = self.lifecycle.admit(self.runner.queue_depth,
                                          priority=request.priority,
                                          timeout_s=timeout_s)
        except QueueFull as exc:
            self.metrics.backpressure_rejections.inc()
            retry_after = max(1, int(exc.retry_after_s))
            await self._respond_json(
                writer, 429,
                error_body(str(exc), error_type="rate_limit_error",
                           retry_after_s=retry_after),
                extra_headers={"Retry-After": str(retry_after)})
            return 429

        loop = asyncio.get_running_loop()
        events: "asyncio.Queue" = asyncio.Queue()

        def hook(event) -> None:  # runs on the engine-runner thread
            loop.call_soon_threadsafe(events.put_nowait, event)

        try:
            try:
                session_id = await asyncio.wrap_future(self.runner.submit(
                    prompt_tokens=list(request.prompt),
                    max_new_tokens=request.max_tokens,
                    temperature=request.temperature,
                    top_k=request.top_k,
                    stop_tokens=request.stop,
                    seed=request.seed,
                    priority=request.priority,
                    timeout_s=timeout_s,
                    stream_hook=hook,
                ))
            except ValueError as exc:  # semantic validation (engine-side)
                ticket.finish_reason = "rejected"
                await self._respond_json(writer, 400, error_body(str(exc)))
                return 400
            ticket.session_id = session_id
            if request.stream:
                return await self._stream_response(
                    reader, writer, request, ticket, events)
            return await self._sync_response(writer, request, ticket,
                                             events)
        finally:
            # Always runs — submit failures of any kind included — so
            # tickets cannot leak from the in-flight table, and the
            # engine-side session is collected (release if finished,
            # cancel if a handler bailed out mid-stream) to keep the
            # session table proportional to the in-flight request set.
            self.lifecycle.close(ticket, ticket.finish_reason or "closed")
            if ticket.session_id is not None:
                self.runner.reap(ticket.session_id)

    async def _sync_response(self, writer: asyncio.StreamWriter,
                             request: CompletionRequest, ticket,
                             events: "asyncio.Queue") -> int:
        assembler = StreamAssembler(request.prompt)
        while not assembler.finished:
            event = await events.get()
            if event.finished:
                assembler.finish(event.finish_reason)
            else:
                assembler.feed_token(event.index, event.token)
                self.lifecycle.note_token(ticket)
        result = assembler.result()
        ticket.finish_reason = result.finish_reason
        self.metrics.completed_requests.inc(reason=result.finish_reason)
        await self._respond_json(writer, 200, completion_body(
            ticket.request_id, self.model_name, len(request.prompt),
            result.generated_tokens, result.finish_reason))
        return 200

    async def _stream_response(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter,
                               request: CompletionRequest, ticket,
                               events: "asyncio.Queue") -> int:
        writer.write(self._head(200, {
            "Content-Type": "text/event-stream",
            "Cache-Control": "no-cache",
            "Transfer-Encoding": "chunked",
        }))
        await writer.drain()
        # Protocol decision: a streaming client keeps its read side open
        # and sends nothing more, so EOF (or any stray byte) on the read
        # side is treated as abandonment.  Watching the read side is what
        # makes a disconnect visible *before* the session produces tokens
        # (the disconnect-before-admission path) — write-error detection
        # alone only fires once chunks flow.  The cost: a client that
        # half-closes (shutdown(SHUT_WR)) is treated as gone.
        watchdog = asyncio.create_task(reader.read(1))
        getter: Optional[asyncio.Task] = None
        try:
            while True:
                getter = asyncio.create_task(events.get())
                done, _ = await asyncio.wait(
                    {getter, watchdog},
                    return_when=asyncio.FIRST_COMPLETED)
                if watchdog in done and not getter.done():
                    getter.cancel()
                    await self._abort_stream(ticket)
                    return 499
                event = await getter
                getter = None
                if event.finished:
                    ticket.finish_reason = event.finish_reason
                    self.metrics.completed_requests.inc(
                        reason=event.finish_reason)
                    writer.write(_chunk(sse_event(chunk_body(
                        ticket.request_id, self.model_name, event.index,
                        None, finish_reason=event.finish_reason))))
                    writer.write(_chunk(SSE_DONE))
                    writer.write(_LAST_CHUNK)
                    await writer.drain()
                    return 200
                self.lifecycle.note_token(ticket)
                self.metrics.streamed_tokens.inc()
                writer.write(_chunk(sse_event(chunk_body(
                    ticket.request_id, self.model_name, event.index,
                    event.token))))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            await self._abort_stream(ticket)
            return 499
        finally:
            if getter is not None and not getter.done():
                getter.cancel()
            if not watchdog.done():
                watchdog.cancel()

    async def _abort_stream(self, ticket) -> None:
        """Client went away: cancel the session, reclaiming its pages."""
        self.metrics.client_disconnects.inc()
        ticket.finish_reason = "disconnect"
        if ticket.session_id is not None:
            await asyncio.wrap_future(self.runner.cancel(ticket.session_id))

    # ------------------------------------------------------------------ #
    # Response plumbing
    # ------------------------------------------------------------------ #

    def _head(self, status: int, headers: Dict[str, str]) -> bytes:
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        lines.append("Connection: close")
        return ("\r\n".join(lines) + "\r\n\r\n").encode()

    async def _respond_raw(self, writer: asyncio.StreamWriter, status: int,
                           body: bytes, content_type: str,
                           extra_headers: Optional[Dict[str, str]] = None,
                           ) -> None:
        headers = {
            "Content-Type": content_type,
            "Content-Length": str(len(body)),
        }
        if extra_headers:
            headers.update(extra_headers)
        writer.write(self._head(status, headers) + body)
        await writer.drain()

    async def _respond_json(self, writer: asyncio.StreamWriter, status: int,
                            payload: dict,
                            extra_headers: Optional[Dict[str, str]] = None,
                            ) -> None:
        await self._respond_raw(
            writer, status, json.dumps(payload).encode(),
            content_type="application/json", extra_headers=extra_headers)


def serve_model(model: TransformerModel,
                config: Optional[GatewayConfig] = None,
                model_name: str = "repro-tmac",
                **engine_kwargs) -> Gateway:
    """Build the full serving stack around one model (not yet started).

    Convenience used by the demo, benchmarks and tests::

        gateway = serve_model(model, GatewayConfig(port=0),
                              max_batch_size=4, kv_cache_bytes=1 << 20)
        gateway.runner.start()
        host, port = await gateway.start()
        ...
        await gateway.stop()
        gateway.runner.stop()
    """
    config = config or GatewayConfig()
    engine = ServingEngine(model, **engine_kwargs)
    metrics = GatewayMetrics(config.metrics_namespace)
    runner = EngineRunner(engine, metrics=metrics,
                          poll_interval_s=config.poll_interval_s)
    return Gateway(runner, config=config, metrics=metrics,
                   model_name=model_name)
