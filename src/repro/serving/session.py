"""Per-request inference sessions.

An :class:`InferenceSession` owns everything that belongs to one generation
request: the prompt, the per-layer KV caches, the absolute decode position,
the sampling state (its *own* rng, so batched and sequential execution draw
identical samples), and the termination bookkeeping.  The continuous-
batching scheduler (:mod:`repro.serving.engine`) freely interleaves decode
steps from many sessions because every piece of cross-step state lives
here, not in the model.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.llm.inference import sample_token
from repro.llm.layers import KVCache

__all__ = ["SessionState", "SamplingParams", "InferenceSession", "StreamEvent"]

_session_counter = itertools.count()


class SessionState(Enum):
    """Lifecycle of a request inside the serving engine."""

    WAITING = "waiting"  # submitted (or preempted), not yet in the batch
    PREFILLING = "prefilling"  # admitted, prompt being processed (chunked)
    ACTIVE = "active"  # prefilled, decoding one token per engine step
    FINISHED = "finished"  # hit max tokens / stop token / context limit


@dataclass(frozen=True)
class SamplingParams:
    """Per-request sampling configuration.

    Validated at construction — and therefore at
    :meth:`repro.serving.engine.ServingEngine.submit` — so malformed
    requests fail with a clear error before they can join a batch:
    ``max_new_tokens`` must be >= 1 (a request that can never produce a
    token is a caller bug, not a schedulable unit of work) and ``top_k``
    must be >= 0 (0, the default, disables top-k truncation; negative
    values are meaningless).

    Generation stops at any token in ``stop_tokens``; ``stop_token`` is
    the historical single-token spelling, kept as a back-compat alias
    (both may be given — the effective stop set is their union, exposed
    as :attr:`stop_token_ids`).  Stop tokens must be non-negative ints.
    """

    max_new_tokens: int = 16
    temperature: float = 0.0
    top_k: int = 0
    stop_token: Optional[int] = None
    stop_tokens: Tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_new_tokens < 1:
            raise ValueError(
                f"max_new_tokens must be >= 1, got {self.max_new_tokens} "
                "(a request must be able to produce at least one token)"
            )
        if not math.isfinite(self.temperature) or self.temperature < 0:
            raise ValueError(
                f"temperature must be finite and >= 0, got {self.temperature}"
            )
        if self.top_k < 0:
            raise ValueError(
                f"top_k must be >= 0 (0 disables truncation), got {self.top_k}"
            )
        stops: Tuple[int, ...] = tuple(
            int(t) for t in self.stop_tokens
        ) if not isinstance(self.stop_tokens, int) else (self.stop_tokens,)
        object.__setattr__(self, "stop_tokens", stops)
        for token in stops + ((self.stop_token,)
                              if self.stop_token is not None else ()):
            if int(token) < 0:
                raise ValueError(
                    f"stop tokens must be non-negative ints, got {token}"
                )
        # Frozen dataclass: the union can never change, and membership is
        # tested once per decode step per session — build the set once.
        ids = set(stops)
        if self.stop_token is not None:
            ids.add(int(self.stop_token))
        object.__setattr__(self, "_stop_token_ids", frozenset(ids))

    @property
    def stop_token_ids(self) -> frozenset:
        """The effective stop set: ``stop_tokens`` plus the legacy alias."""
        return self._stop_token_ids


@dataclass(frozen=True)
class StreamEvent:
    """One streaming notification published by the engine.

    Token events (``finished=False``) carry a newly sampled ``token`` and
    its 0-based ``index`` within the session's generated tokens; exactly
    one terminal event (``finished=True``, ``token=None``, ``index`` equal
    to the generation length) closes every stream with the session's
    ``finish_reason``.  Events for one session are published in order and
    exactly once — across preemption/recompute, chunked prefill and any
    batch composition — so concatenating the token events reproduces the
    final :class:`repro.llm.inference.GenerationResult` token for token.
    """

    session_id: int
    index: int
    token: Optional[int]
    finished: bool
    finish_reason: str = ""


@dataclass
class InferenceSession:
    """State of one in-flight generation request."""

    prompt_tokens: List[int]
    params: SamplingParams = field(default_factory=SamplingParams)
    session_id: int = field(default_factory=lambda: next(_session_counter))
    state: SessionState = SessionState.WAITING
    generated_tokens: List[int] = field(default_factory=list)
    #: Per-layer KV caches — plain :class:`repro.llm.layers.KVCache` in the
    #: unpaged engine, :class:`repro.kvcache.paged.PagedKVCache` views when
    #: the engine runs against a page pool.
    caches: Optional[List[KVCache]] = None
    #: The session's :class:`repro.kvcache.paged.PagedSessionCache` (block
    #: table) when paged; owned and released by the engine, which is why
    #: :meth:`finish` leaves it in place.
    page_cache: Optional[object] = field(default=None, repr=False)
    #: Absolute position of the *next* token to be fed to the model.
    position: int = 0
    #: Most recent logits row; the next sample is drawn from it.
    last_logits: Optional[np.ndarray] = None
    #: Token waiting to be fed through the model at the next decode step.
    pending_token: Optional[int] = None
    #: Why the session finished: ``"stop"`` (stop token), ``"length"``
    #: (generation budget), ``"context"`` (context window), ``"capacity"``
    #: (KV pool can never hold the next step), ``"deadline"`` (expired
    #: before completing), ``"cancelled"``, or ``""`` while still running.
    finish_reason: str = ""
    #: Admission priority — higher values are admitted first, ties FIFO.
    priority: int = 0
    #: Absolute engine-clock time after which the request is expired with
    #: ``finish_reason == "deadline"``; ``None`` means no deadline.
    deadline: Optional[float] = None
    #: Per-token publication callback (:class:`StreamEvent` -> None), run
    #: synchronously on the engine's scheduling thread; ``None`` buffers
    #: tokens until finish, as before.
    stream_hook: Optional[Callable[[StreamEvent], None]] = field(
        default=None, repr=False)
    #: How many generated tokens have already been published (stream
    #: bookkeeping, kept engine-side progress across preemptions).
    streamed_tokens: int = 0
    #: Whether the terminal stream event has been published.
    stream_closed: bool = False
    #: Engine-clock timestamp of submit() (None outside an engine).
    submit_time: Optional[float] = field(default=None, repr=False)
    #: Seconds from submit to the first generated token (None until then).
    ttft: Optional[float] = None
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.prompt_tokens = [int(t) for t in self.prompt_tokens]
        if not self.prompt_tokens:
            raise ValueError("prompt_tokens must be non-empty")
        if self._rng is None:
            self._rng = np.random.default_rng(self.params.seed)

    @property
    def tokens(self) -> List[int]:
        """Prompt + generated tokens."""
        return list(self.prompt_tokens) + list(self.generated_tokens)

    @property
    def finished(self) -> bool:
        """Whether the request has completed."""
        return self.state is SessionState.FINISHED

    def sample(self) -> int:
        """Draw the next token from ``last_logits`` (greedy or temperature).

        Uses the same :func:`repro.llm.inference.sample_token` as the
        sequential generator, so batched and sequential decoding draw
        identical samples from identical logits.
        """
        if self.last_logits is None:
            raise RuntimeError("no logits available; session not prefilled")
        return sample_token(self.last_logits, self.params.temperature,
                            self._rng, top_k=self.params.top_k)

    def advance(self, max_seq_len: int) -> None:
        """Sample one token and update the termination/pending state.

        Mirrors the sequential :class:`repro.llm.inference.Generator` loop
        exactly: nothing is sampled once the budget is spent; after a token
        is recorded, the session finishes if it was the stop token, the
        generation budget is exhausted, or the context window is full;
        otherwise the token is queued for the next batched forward pass.
        """
        if len(self.generated_tokens) >= self.params.max_new_tokens:
            self.finish("length")
            return
        token = self.sample()
        self.generated_tokens.append(token)
        params = self.params
        if token in params.stop_token_ids:
            self.finish("stop")
        elif len(self.generated_tokens) >= params.max_new_tokens:
            self.finish("length")
        elif self.position >= max_seq_len - 1:
            self.finish("context")
        else:
            self.pending_token = token

    def finish(self, reason: str = "") -> None:
        """Mark the session complete and release its per-request memory.

        The KV caches are the bulk of a session's footprint and are dead
        weight once generation ends; dropping them here keeps a
        long-running engine's memory bounded by the *active* batch, not by
        the request history.  ``page_cache`` is deliberately left intact:
        the engine releases its block references (after registering any
        still-shareable full pages in the prefix cache) when it retires the
        session.
        """
        self.state = SessionState.FINISHED
        if reason:
            self.finish_reason = reason
        self.pending_token = None
        self.caches = None
        self.last_logits = None
