"""The serving engine: continuous batching over inference sessions.

:class:`ServingEngine` accepts generation requests at any time
(:meth:`~ServingEngine.submit`), admits them into a bounded running batch,
and advances every active session by one token per :meth:`~ServingEngine.step`
— a single batched forward pass in which each linear layer executes one
mpGEMM over all sessions' current tokens (:mod:`repro.serving.batch`).
Sessions join mid-flight as slots free up and leave the moment they finish
(continuous batching, vLLM-style scheduling at token granularity), so the
batch never drains to refill.

Prefill runs per session on admission (prompt lengths differ; the prompt
pass is compute-bound mpGEMM already).  Decode — the memory-bound phase the
paper targets — is where batching pays: every step amortizes one traversal
of the packed weights over the whole batch.

Determinism: all cross-step state lives in the sessions (KV caches,
positions, per-session rngs), so batched outputs are identical to running
each request alone — the serving tests assert token-level equality.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.plan import plan_cache_stats
from repro.llm.inference import GenerationResult
from repro.llm.model import TransformerModel
from repro.serving.batch import BatchStats, batched_decode_step
from repro.serving.session import InferenceSession, SamplingParams, SessionState

__all__ = ["ServingEngine"]


class ServingEngine:
    """Continuous-batching inference engine over one shared model.

    Parameters
    ----------
    model:
        The transformer every session runs through.  Its weights/kernels
        are stateless across requests; per-request state lives in the
        sessions.
    max_batch_size:
        Maximum number of concurrently active (decoding) sessions.
        Further submissions queue until a slot frees up.
    """

    def __init__(self, model: TransformerModel, max_batch_size: int = 8):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        self.model = model
        self.max_batch_size = max_batch_size
        self.sessions: Dict[int, InferenceSession] = {}
        self._waiting: List[int] = []
        self._active: List[int] = []
        self.stats = BatchStats()
        self._prefills = 0
        self._decode_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Request intake
    # ------------------------------------------------------------------ #

    def submit(
        self,
        prompt_tokens,
        max_new_tokens: int = 16,
        temperature: float = 0.0,
        stop_token: Optional[int] = None,
        seed: int = 0,
    ) -> int:
        """Queue a generation request; returns its session id.

        Invalid requests (empty prompt, out-of-vocabulary tokens, prompt
        longer than the context window) are rejected here, at submission —
        not mid-batch, where a failure would take the whole step down.
        """
        prompt = [int(t) for t in prompt_tokens]
        arch = self.model.arch
        if not prompt:
            raise ValueError("prompt_tokens must be non-empty")
        if any(t < 0 or t >= arch.vocab_size for t in prompt):
            raise ValueError(
                f"prompt contains token ids outside [0, {arch.vocab_size})"
            )
        if len(prompt) > arch.max_seq_len:
            raise ValueError(
                f"prompt length {len(prompt)} exceeds max_seq_len "
                f"{arch.max_seq_len}"
            )
        params = SamplingParams(
            max_new_tokens=max_new_tokens,
            temperature=temperature,
            stop_token=stop_token,
            seed=seed,
        )
        session = InferenceSession(prompt_tokens=prompt, params=params)
        self.sessions[session.session_id] = session
        self._waiting.append(session.session_id)
        self._decode_counts[session.session_id] = 0
        return session.session_id

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    @property
    def num_waiting(self) -> int:
        """Requests queued but not yet admitted."""
        return len(self._waiting)

    @property
    def num_active(self) -> int:
        """Sessions currently in the running batch."""
        return len(self._active)

    @property
    def has_work(self) -> bool:
        """Whether any request is still waiting or decoding."""
        return bool(self._waiting or self._active)

    def _prefill(self, session: InferenceSession) -> None:
        """Run the prompt pass for a newly admitted session."""
        session.caches = self.model.new_cache()
        logits = self.model.forward(
            np.asarray(session.prompt_tokens), caches=session.caches,
            start_position=0,
        )
        session.position = len(session.prompt_tokens)
        session.last_logits = logits[-1]
        session.state = SessionState.ACTIVE
        self._prefills += 1
        # advance() itself finishes zero-budget sessions without sampling.
        session.advance(self.model.arch.max_seq_len)

    def _admit(self) -> None:
        """Move waiting sessions into the batch while slots are free."""
        while self._waiting and len(self._active) < self.max_batch_size:
            session_id = self._waiting.pop(0)
            session = self.sessions[session_id]
            self._prefill(session)
            if not session.finished:
                self._active.append(session_id)

    def _retire_finished(self) -> None:
        self._active = [sid for sid in self._active
                        if not self.sessions[sid].finished]

    def step(self) -> Dict[str, int]:
        """Admit, run one batched decode step, retire finished sessions.

        Returns a small summary (batch size, active/waiting counts) so
        callers can drive scheduling loops and benchmarks.
        """
        self._admit()
        batch = [self.sessions[sid] for sid in self._active
                 if self.sessions[sid].pending_token is not None]
        if batch:
            tokens = [session.pending_token for session in batch]
            positions = [session.position for session in batch]
            caches = [session.caches for session in batch]
            logits = batched_decode_step(
                self.model, tokens, positions, caches, self.stats
            )
            for row, session in enumerate(batch):
                session.pending_token = None
                session.position += 1
                session.last_logits = logits[row]
                self._decode_counts[session.session_id] += 1
                session.advance(self.model.arch.max_seq_len)
        self._retire_finished()
        return {
            "batch_size": len(batch),
            "active": self.num_active,
            "waiting": self.num_waiting,
        }

    def run(self, max_steps: Optional[int] = None) -> Dict[int, GenerationResult]:
        """Drive :meth:`step` until every submitted request completes.

        ``max_steps`` bounds the loop for tests; ``None`` runs to drain.
        Returns one :class:`~repro.llm.inference.GenerationResult` per
        session id.
        """
        steps = 0
        while self.has_work:
            if max_steps is not None and steps >= max_steps:
                break
            self.step()
            steps += 1
        return self.results()

    def results(self) -> Dict[int, GenerationResult]:
        """Generation results of all finished sessions so far."""
        out: Dict[int, GenerationResult] = {}
        for session_id, session in self.sessions.items():
            if not session.finished:
                continue
            out[session_id] = self._result_for(session)
        return out

    def _result_for(self, session) -> GenerationResult:
        return GenerationResult(
            prompt_tokens=list(session.prompt_tokens),
            generated_tokens=list(session.generated_tokens),
            prefill_length=len(session.prompt_tokens),
            decode_steps=self._decode_counts[session.session_id],
        )

    def release(self, session_id: int) -> GenerationResult:
        """Remove a finished session from the engine, returning its result.

        Finished sessions already dropped their KV caches; releasing them
        removes the remaining bookkeeping so a long-running engine's memory
        stays proportional to the in-flight request set.  Releasing a
        session that is still waiting or decoding raises ``ValueError``.
        """
        session = self.sessions.get(session_id)
        if session is None:
            raise KeyError(f"unknown session id {session_id}")
        if not session.finished:
            raise ValueError(
                f"session {session_id} is {session.state.value}; only "
                "finished sessions can be released"
            )
        result = self._result_for(session)
        del self.sessions[session_id]
        del self._decode_counts[session_id]
        return result

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def serving_stats(self) -> Dict[str, float]:
        """Batching and cache counters (used by the serving benchmark).

        The ``global_plan_cache_*`` entries report the *process-wide* plan
        cache (shared with every other engine and every ``tmac_gemm`` call
        in the process), not per-engine traffic — the prefix makes the
        scope explicit.
        """
        plan_stats = plan_cache_stats()
        return {
            "prefills": self._prefills,
            "decode_steps": self.stats.decode_steps,
            "batched_tokens": self.stats.batched_tokens,
            "mean_batch_size": self.stats.mean_batch_size,
            "lut_precomputes": self.stats.lut_precomputes,
            "lut_reuses": self.stats.lut_reuses,
            "global_plan_cache_hits": plan_stats["hits"],
            "global_plan_cache_misses": plan_stats["misses"],
        }
