"""The serving engine: continuous batching with paged-KV scheduling.

:class:`ServingEngine` accepts generation requests at any time
(:meth:`~ServingEngine.submit`), admits them into a bounded running batch,
and advances every active session by one token per :meth:`~ServingEngine.step`
— a single batched forward pass in which each linear layer executes one
mpGEMM over all sessions' current tokens (:mod:`repro.serving.batch`).
Sessions join mid-flight as slots free up and leave the moment they finish
(continuous batching, vLLM-style scheduling at token granularity), so the
batch never drains to refill.

With a KV byte budget (``kv_cache_bytes``) the engine schedules against a
:class:`repro.kvcache.pool.PagePool` instead of unbounded per-session
caches:

* **Admission control** — a waiting request is admitted only when the pool
  has free pages for its whole prompt (minus prefix-cache hits) plus one
  decode token; otherwise it waits, FIFO.
* **Prefix sharing** — full pages of every session's token history are
  registered in the pool's prefix cache, so requests sharing a prompt
  prefix map the same physical pages and skip recomputing them.
* **Preemption** — when a decode step cannot get a page, the *youngest*
  running session is preempted: its pages are released and it is requeued
  at the front of the waiting queue, to be recomputed from its prompt plus
  the tokens it already generated (vLLM's recompute-style preemption).
  Because sessions keep their sampling rng across preemption, the final
  token sequence is unchanged.  Progress guarantee: a session whose next
  step could not fit even in an *empty* pool is failed with a capacity
  error (``finish_reason == "capacity"``, keeping the tokens produced so
  far) instead of being requeued for a recompute that must starve again.
* **Chunked prefill** — with ``prefill_chunk`` set, long prompts are
  processed ``prefill_chunk`` tokens per engine step instead of stalling
  the whole batch behind one long prompt pass.

Request lifecycle (the serving gateway's substrate): admission is
priority-aware (higher ``priority`` first, FIFO within a level), requests
may carry an absolute ``deadline`` on the engine clock (expired requests
finish with ``finish_reason == "deadline"``, keeping partial tokens), and
a per-request ``stream_hook`` receives every newly sampled token the step
it is produced (:class:`repro.serving.session.StreamEvent`) plus exactly
one terminal event — published exactly once per token even across
preemption/recompute and chunked prefill.  The engine also records TTFT
and per-step decode wall time (``serving_stats()`` /
:meth:`~ServingEngine.drain_timing_samples`) so frontends can export
latency histograms without wrapping the scheduler.

Determinism: all cross-step state lives in the sessions (KV caches,
positions, per-session rngs), so batched outputs are identical to running
each request alone — the serving tests assert token-level equality.  (The
attention einsum's reduction order varies with the number of query rows,
so prefix-reuse and chunked prefill can shift *logits* by an ulp relative
to a whole-prompt prefill; generated tokens still match except at exact
argmax near-ties, the same caveat :mod:`repro.serving.batch` documents for
the BLAS reference backend.)
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.executor import (
    parallel_executor_stats,
    process_executor_stats,
    specialize_stats,
)
from repro.core.plan import plan_cache_stats
from repro.kvcache import OutOfBlocks, PagePool
from repro.kvcache.pool import DEFAULT_BLOCK_SIZE
from repro.llm.inference import GenerationResult
from repro.llm.model import TransformerModel
from repro.serving.batch import BatchStats, batched_decode_step
from repro.serving.session import (
    InferenceSession,
    SamplingParams,
    SessionState,
    StreamEvent,
)

__all__ = ["ServingEngine"]

#: Bound on the buffered TTFT / decode-step wall-time samples held for
#: :meth:`ServingEngine.drain_timing_samples`.  A consumer (the gateway's
#: metrics histograms) drains every step; without a consumer the deques
#: simply keep the most recent samples instead of growing with step count.
TIMING_SAMPLE_BUFFER = 4096


class ServingEngine:
    """Continuous-batching inference engine over one shared model.

    Parameters
    ----------
    model:
        The transformer every session runs through.  Its weights/kernels
        are stateless across requests; per-request state lives in the
        sessions.
    max_batch_size:
        Maximum number of concurrently running (prefilling + decoding)
        sessions.  Further submissions queue until a slot frees up.
    kv_cache_bytes:
        Byte budget for all sessions' KV state.  When set, sessions hold
        block tables into a shared :class:`~repro.kvcache.pool.PagePool`
        (prefix sharing, admission control, preemption); when ``None``
        (default) each session owns unbounded per-layer caches, as before.
    page_size:
        Tokens per KV page in paged mode (default 16).
    prefill_chunk:
        Maximum prompt tokens processed per engine step and session;
        ``None`` (default) prefills whole prompts in one pass.
    prefix_caching:
        Whether paged mode registers full pages for cross-request reuse.
    clock:
        Monotonic time source (seconds) used for TTFT / decode-step
        timing and request deadlines.  Injectable so scheduling-policy
        tests can drive deadlines deterministically; defaults to
        :func:`time.perf_counter`.
    """

    def __init__(self, model: TransformerModel, max_batch_size: int = 8,
                 kv_cache_bytes: Optional[int] = None,
                 page_size: int = DEFAULT_BLOCK_SIZE,
                 prefill_chunk: Optional[int] = None,
                 prefix_caching: bool = True,
                 clock: Callable[[], float] = time.perf_counter):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if prefill_chunk is not None and prefill_chunk < 1:
            raise ValueError(f"prefill_chunk must be >= 1, got {prefill_chunk}")
        self.model = model
        self.max_batch_size = max_batch_size
        self.prefill_chunk = prefill_chunk
        self.pool: Optional[PagePool] = None
        if kv_cache_bytes is not None:
            self.pool = PagePool.for_model(model.arch, kv_cache_bytes,
                                           block_size=page_size,
                                           prefix_caching=prefix_caching)
        self.sessions: Dict[int, InferenceSession] = {}
        self._waiting: List[int] = []
        self._prefilling: List[int] = []
        self._active: List[int] = []
        self.stats = BatchStats()
        self._prefills = 0
        self._prefill_chunks = 0
        self.preemptions = 0
        #: Sessions force-finished because the KV pool can never hold their
        #: next step (their results carry ``finish_reason == "capacity"``).
        self.capacity_failures = 0
        #: Sessions expired past their deadline (``finish_reason ==
        #: "deadline"``), whether still queued or already running.
        self.deadline_expirations = 0
        #: Stream-hook invocations that raised; the exception is swallowed
        #: (a broken consumer must not take the batch down) and counted.
        self.stream_hook_errors = 0
        self.clock = clock
        self._decode_counts: Dict[int, int] = {}
        self._admit_seq: Dict[int, int] = {}
        self._next_seq = 0
        self._arrival_seq: Dict[int, int] = {}
        self._next_arrival = 0
        self._peak_kv_bytes = 0
        self._peak_shared_blocks = 0
        self._ttft_sum = 0.0
        self._ttft_count = 0
        self._ttft_samples: deque = deque(maxlen=TIMING_SAMPLE_BUFFER)
        self._decode_wall_sum = 0.0
        self._decode_wall_count = 0
        self._decode_wall_samples: deque = deque(
            maxlen=TIMING_SAMPLE_BUFFER)

    # ------------------------------------------------------------------ #
    # Request intake
    # ------------------------------------------------------------------ #

    def submit(
        self,
        prompt_tokens,
        max_new_tokens: int = 16,
        temperature: float = 0.0,
        top_k: int = 0,
        stop_token: Optional[int] = None,
        stop_tokens: Sequence[int] = (),
        seed: int = 0,
        priority: int = 0,
        deadline: Optional[float] = None,
        stream_hook: Optional[Callable[[StreamEvent], None]] = None,
    ) -> int:
        """Queue a generation request; returns its session id.

        Invalid requests (empty prompt, out-of-vocabulary tokens, prompt
        longer than the context window, negative/non-finite temperature,
        ``max_new_tokens < 1``, ``top_k < 0``, negative stop tokens) are
        rejected here, at submission — not mid-batch, where a failure
        would take the whole step down.

        Request-lifecycle parameters (all optional, defaults reproduce
        the previous FIFO behaviour):

        * ``priority`` — higher values are admitted first; ties are FIFO
          by submission order (and preempted sessions keep their original
          arrival rank, so recompute victims are not starved).
        * ``deadline`` — absolute time on the engine :attr:`clock` after
          which the request is expired with ``finish_reason ==
          "deadline"``, whether still queued or mid-decode; the tokens
          generated so far are kept.
        * ``stream_hook`` — callable receiving a
          :class:`~repro.serving.session.StreamEvent` for every newly
          sampled token the moment the decode step that produced it
          completes, plus one terminal event; exceptions raised by the
          hook are swallowed and counted in ``stream_hook_errors``.
        """
        prompt = [int(t) for t in prompt_tokens]
        arch = self.model.arch
        if not prompt:
            raise ValueError("prompt_tokens must be non-empty")
        if any(t < 0 or t >= arch.vocab_size for t in prompt):
            raise ValueError(
                f"prompt contains token ids outside [0, {arch.vocab_size})"
            )
        if len(prompt) > arch.max_seq_len:
            raise ValueError(
                f"prompt length {len(prompt)} exceeds max_seq_len "
                f"{arch.max_seq_len}"
            )
        if self.pool is not None and \
                self._pages_for(min(len(prompt) + 1, arch.max_seq_len)) > \
                self.pool.num_blocks:
            raise ValueError(
                f"prompt of {len(prompt)} tokens needs more KV pages than "
                f"the pool holds ({self.pool.num_blocks} pages of "
                f"{self.pool.block_size} tokens); raise kv_cache_bytes"
            )
        params = SamplingParams(
            max_new_tokens=max_new_tokens,
            temperature=temperature,
            top_k=top_k,
            stop_token=stop_token,
            stop_tokens=tuple(stop_tokens),
            seed=seed,
        )
        session = InferenceSession(prompt_tokens=prompt, params=params,
                                   priority=priority, deadline=deadline,
                                   stream_hook=stream_hook)
        session.submit_time = self.clock()
        self.sessions[session.session_id] = session
        self._waiting.append(session.session_id)
        self._decode_counts[session.session_id] = 0
        self._arrival_seq[session.session_id] = self._next_arrival
        self._next_arrival += 1
        return session.session_id

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    @property
    def num_waiting(self) -> int:
        """Requests queued (or preempted) but not currently running."""
        return len(self._waiting)

    #: Alias used by the serving gateway's admission control / metrics.
    queue_depth = num_waiting

    @property
    def num_prefilling(self) -> int:
        """Admitted sessions still working through their prompt."""
        return len(self._prefilling)

    @property
    def num_active(self) -> int:
        """Sessions currently in the decoding batch."""
        return len(self._active)

    @property
    def has_work(self) -> bool:
        """Whether any request is still waiting, prefilling or decoding."""
        return bool(self._waiting or self._prefilling or self._active)

    def _admission_key(self, session_id: int):
        """Admission order: highest priority first, then FIFO by arrival."""
        return (-self.sessions[session_id].priority,
                self._arrival_seq[session_id])

    def _admit(self) -> None:
        """Move waiting sessions into the batch while resources allow.

        A session (re-)enters with a prefill target of its *whole* token
        history — just the prompt for fresh requests, prompt plus generated
        tokens for preempted ones (recompute).  In paged mode admission is
        gated by the pool's free-page count against the pages the target
        needs beyond its prefix-cache hits (a non-recording probe).
        Admission order is priority-aware: highest :attr:`InferenceSession.
        priority` first, FIFO within a priority level (preempted sessions
        keep their original arrival rank), and stops at the first request
        in that order which does not fit — deliberate head-of-line
        blocking, so a large high-priority request is not starved by
        smaller low-priority ones slipping past it.  Pages are *bound* at
        prefill start, not here, so requests admitted in one burst can
        still share the prefix pages their burst-mates commit moments
        later.
        """
        while self._waiting and (len(self._active) + len(self._prefilling)
                                 < self.max_batch_size):
            session_id = min(self._waiting, key=self._admission_key)
            session = self.sessions[session_id]
            target = session.tokens
            if self.pool is not None:
                total_pages = self._pages_for(
                    min(len(target) + 1, self.model.arch.max_seq_len))
                if total_pages > self.pool.num_blocks:
                    # A preempted session has grown past what the whole
                    # pool can recompute: it can never run again, so it
                    # fails with a capacity error, keeping the tokens it
                    # already produced (analogous to hitting max_seq_len,
                    # but surfaced as finish_reason == "capacity").
                    self._fail_capacity(session_id)
                    continue
                if total_pages - self._probe_prefix_pages(target) > \
                        self.pool.free_blocks:
                    break
            self._waiting.remove(session_id)
            session.state = SessionState.PREFILLING
            self._prefilling.append(session_id)
            self._admit_seq[session_id] = self._next_seq
            self._next_seq += 1

    def _probe_prefix_pages(self, target: List[int]) -> int:
        """Pages a request would get from the prefix cache (counter-free)."""
        if self.pool is None or self.pool.prefix_cache is None:
            return 0
        block_ids, _ = self.pool.prefix_cache.match(
            target, max_tokens=len(target) - 1, record=False)
        return len(block_ids)

    def _bind_caches(self, session: InferenceSession,
                     target: List[int]) -> bool:
        """Attach KV storage to an admitted session at prefill start.

        In paged mode this is where the real prefix match happens and the
        remaining pages (whole target plus one decode token) are reserved,
        all-or-nothing — so prefill can never die out-of-memory mid-pass.
        Returns ``False`` when the pool cannot cover the reservation (the
        admission-time estimate was beaten by burst-mates grabbing pages
        first); the caller requeues the session.
        """
        if self.pool is None:
            session.caches = self.model.new_cache()
            session.position = 0
            return True
        cache = self.pool.create_session_cache(target)
        try:
            cache.reserve(min(len(target) + 1, self.model.arch.max_seq_len))
        except OutOfBlocks:
            cache.release()
            return False
        session.page_cache = cache
        session.caches = cache.layer_views()
        session.position = cache.prefix_length
        return True

    def _advance_prefills(self) -> None:
        """Run one prompt chunk for every prefilling session.

        Without ``prefill_chunk`` the whole remaining prompt is processed,
        reproducing the previous prefill-at-admission behaviour.  When the
        last chunk completes, the session samples its first token
        (``advance``) and joins the decoding batch.
        """
        for session_id in list(self._prefilling):
            session = self.sessions[session_id]
            target = session.tokens
            if session.caches is None and not self._bind_caches(session,
                                                                target):
                self._prefilling.remove(session_id)
                session.state = SessionState.WAITING
                self._waiting.insert(0, session_id)
                continue
            chunk = self.prefill_chunk or len(target)
            end = min(session.position + chunk, len(target))
            tokens = np.asarray(target[session.position:end], dtype=np.int64)
            logits = self.model.forward(tokens, caches=session.caches,
                                        start_position=session.position)
            session.position = end
            self._prefill_chunks += 1
            if session.page_cache is not None:
                # Commit completed pages immediately so later sessions in
                # this same admission burst can share them.
                session.page_cache.commit_prefix(target)
            if end < len(target):
                continue
            session.last_logits = logits[-1]
            session.state = SessionState.ACTIVE
            self._prefills += 1
            self._prefilling.remove(session_id)
            # For preempted sessions advance() resumes exactly where the
            # failed decode step would have (same logits, same rng); for
            # budget-exhausted recomputes it finishes without sampling.
            session.advance(self.model.arch.max_seq_len)
            if not session.finished:
                self._active.append(session_id)
            else:
                # Finished straight out of prefill (one-token budget, stop
                # token on the first sample, context limit): it never
                # joins _active, so _retire_finished would miss its pages.
                self._release_pages(session)
            self._note_progress(session)

    def _pages_for(self, num_tokens: int) -> int:
        """KV pages needed to hold ``num_tokens`` positions."""
        return -(-num_tokens // self.pool.block_size)

    def _youngest_running(self) -> Optional[int]:
        """The most recently admitted running session (preemption victim)."""
        running = self._prefilling + self._active
        if not running:
            return None
        return max(running, key=lambda sid: self._admit_seq[sid])

    def _preempt(self, session_id: int) -> None:
        """Release a running session's pages and requeue it for recompute.

        The session keeps its generated tokens and its sampling rng; on
        re-admission it prefills over prompt + generated tokens, which
        reproduces the logits the failed decode step would have seen, so
        the continuation is token-identical.
        """
        session = self.sessions[session_id]
        if session_id in self._active:
            self._active.remove(session_id)
        if session_id in self._prefilling:
            self._prefilling.remove(session_id)
        if session.page_cache is not None:
            session.page_cache.release()
            session.page_cache = None
        session.caches = None
        session.last_logits = None
        session.pending_token = None
        session.position = 0
        session.state = SessionState.WAITING
        self._waiting.insert(0, session_id)
        self.preemptions += 1

    def _reserve_decode_pages(self) -> None:
        """Guarantee every pending decode token a page before the step.

        Surfacing out-of-memory *here* — instead of mid-forward — turns it
        into scheduling policy: the youngest running session is preempted
        (freeing its pages) until the reservation fits.  When the starving
        session is itself the youngest, preempting (= requeueing) it only
        helps if the *whole* pool could hold its recomputed history plus
        the next token; if even that is impossible, requeueing would
        recompute everything just to starve again — an unbounded
        preempt/recompute loop when it is the only runnable session — so
        the session fails with a capacity error instead, keeping the
        tokens it already produced (progress guarantee).
        """
        if self.pool is None:
            return
        for session_id in list(self._active):
            if session_id not in self._active:
                continue  # preempted while serving an earlier reservation
            session = self.sessions[session_id]
            if session.pending_token is None:
                continue
            while True:
                try:
                    session.page_cache.reserve(session.position + 1)
                    break
                except OutOfBlocks:
                    victim = self._youngest_running()
                    if victim is None:
                        victim = session_id
                    # A requeued session recomputes its whole history (the
                    # pending token included: position + 1 tokens) and needs
                    # one decode slot on top — exactly _admit's readmission
                    # requirement.  If even an empty pool cannot cover that,
                    # preempting it would be a futile recompute cycle.
                    if victim == session_id and \
                            self._pages_for(session.position + 2) > \
                            self.pool.num_blocks:
                        self._fail_capacity(session_id)
                        break
                    self._preempt(victim)
                    if victim == session_id:
                        break

    def _fail_capacity(self, session_id: int) -> None:
        """Finish a session the pool can never satisfy (capacity error)."""
        session = self.sessions[session_id]
        for queue in (self._waiting, self._prefilling, self._active):
            if session_id in queue:
                queue.remove(session_id)
        self._release_pages(session)
        session.finish("capacity")
        self.capacity_failures += 1
        self._note_progress(session)

    def _expire_deadlines(self) -> None:
        """Finish every live session whose deadline has passed.

        Runs at the top of :meth:`step`, so an expired request is dropped
        before it can consume admission, prefill or decode work.  Queued
        and running sessions are treated alike: pages are released, the
        tokens produced so far are kept, and the result carries
        ``finish_reason == "deadline"`` (the gateway's request-timeout
        path; nothing expires when no deadline was given).
        """
        now = None
        for session_id in list(self.sessions):
            session = self.sessions[session_id]
            if session.finished or session.deadline is None:
                continue
            if now is None:
                now = self.clock()
            if now < session.deadline:
                continue
            for queue in (self._waiting, self._prefilling, self._active):
                if session_id in queue:
                    queue.remove(session_id)
            self._release_pages(session)
            session.finish("deadline")
            self.deadline_expirations += 1
            self._note_progress(session)

    # ------------------------------------------------------------------ #
    # Streaming + timing
    # ------------------------------------------------------------------ #

    def _note_progress(self, session: InferenceSession) -> None:
        """Record TTFT and publish newly sampled tokens for one session.

        Called after every point where a session can gain tokens or
        finish (prefill's first sample, each decode advance, capacity /
        deadline failures, cancel).  ``streamed_tokens`` makes publication
        exactly-once even across preemption and recompute: a requeued
        session regrows its KV state but keeps its generated tokens, so
        nothing is re-published.
        """
        if session.ttft is None and session.generated_tokens and \
                session.submit_time is not None:
            session.ttft = self.clock() - session.submit_time
            self._ttft_sum += session.ttft
            self._ttft_count += 1
            self._ttft_samples.append(session.ttft)
        hook = session.stream_hook
        new_tokens = session.generated_tokens[session.streamed_tokens:]
        if hook is not None:
            for offset, token in enumerate(new_tokens):
                self._emit(hook, StreamEvent(
                    session_id=session.session_id,
                    index=session.streamed_tokens + offset,
                    token=int(token),
                    finished=False,
                ))
        session.streamed_tokens += len(new_tokens)
        if session.finished and not session.stream_closed:
            session.stream_closed = True
            if hook is not None:
                self._emit(hook, StreamEvent(
                    session_id=session.session_id,
                    index=session.streamed_tokens,
                    token=None,
                    finished=True,
                    finish_reason=session.finish_reason,
                ))

    def _emit(self, hook, event: StreamEvent) -> None:
        try:
            hook(event)
        except Exception:
            # A consumer crash must not take the whole batch down; the
            # counter surfaces the problem to metrics/tests.
            self.stream_hook_errors += 1

    def drain_timing_samples(self) -> Dict[str, List[float]]:
        """Return and clear the buffered TTFT / decode-step wall samples.

        The gateway's metrics histograms call this once per engine step;
        the running sums behind ``serving_stats()``'s means are *not*
        reset.  Buffers are bounded (``TIMING_SAMPLE_BUFFER``), so an
        engine without a draining consumer keeps the most recent samples.
        """
        samples = {
            "ttft_s": list(self._ttft_samples),
            "decode_step_s": list(self._decode_wall_samples),
        }
        self._ttft_samples.clear()
        self._decode_wall_samples.clear()
        return samples

    def _commit_prefix_pages(self) -> None:
        """Register newly completed full pages for cross-request reuse."""
        if self.pool is None or self.pool.prefix_cache is None:
            return
        for session in self.sessions.values():
            if session.page_cache is not None:
                session.page_cache.commit_prefix(session.tokens)

    def _retire_finished(self) -> None:
        for session_id in list(self._active):
            session = self.sessions[session_id]
            if not session.finished:
                continue
            self._active.remove(session_id)
            self._release_pages(session)

    def _release_pages(self, session: InferenceSession) -> None:
        if session.page_cache is not None:
            session.page_cache.release()
            session.page_cache = None

    def _track_kv_peak(self) -> None:
        """High-water mark of live KV bytes (pool-tracked in paged mode)."""
        if self.pool is not None:
            self._peak_kv_bytes = self.pool.peak_kv_bytes
            self._peak_shared_blocks = max(self._peak_shared_blocks,
                                           self.pool.shared_blocks)
            return
        live = 0
        for session in self.sessions.values():
            if session.caches:
                live += sum(cache.memory_bytes()
                            for cache in session.caches)
        self._peak_kv_bytes = max(self._peak_kv_bytes, live)

    def step(self) -> Dict[str, int]:
        """Admit, prefill, reserve pages, decode one batched step, retire.

        Returns a small summary (batch size, active/waiting counts) so
        callers can drive scheduling loops and benchmarks.
        """
        self._expire_deadlines()
        self._admit()
        self._advance_prefills()
        self._reserve_decode_pages()
        batch = [self.sessions[sid] for sid in self._active
                 if self.sessions[sid].pending_token is not None]
        if batch:
            step_start = self.clock()
            tokens = [session.pending_token for session in batch]
            positions = [session.position for session in batch]
            caches = [session.caches for session in batch]
            logits = batched_decode_step(
                self.model, tokens, positions, caches, self.stats
            )
            for row, session in enumerate(batch):
                session.pending_token = None
                session.position += 1
                session.last_logits = logits[row]
                self._decode_counts[session.session_id] += 1
                session.advance(self.model.arch.max_seq_len)
            wall = self.clock() - step_start
            self._decode_wall_sum += wall
            self._decode_wall_count += 1
            self._decode_wall_samples.append(wall)
        self._commit_prefix_pages()
        self._retire_finished()
        # Publish after retirement so a terminal event is only observable
        # once the finished session's pages are back in the pool (the
        # gateway checks free-page baselines on stream completion).
        for session in batch:
            self._note_progress(session)
        self._track_kv_peak()
        return {
            "batch_size": len(batch),
            "active": self.num_active,
            "prefilling": self.num_prefilling,
            "waiting": self.num_waiting,
        }

    def run(self, max_steps: Optional[int] = None) -> Dict[int, GenerationResult]:
        """Drive :meth:`step` until every submitted request completes.

        ``max_steps`` bounds the loop for tests; ``None`` runs to drain.
        Returns one :class:`~repro.llm.inference.GenerationResult` per
        session id.
        """
        steps = 0
        while self.has_work:
            if max_steps is not None and steps >= max_steps:
                break
            self.step()
            steps += 1
        return self.results()

    def results(self) -> Dict[int, GenerationResult]:
        """Generation results of all finished sessions so far."""
        out: Dict[int, GenerationResult] = {}
        for session_id, session in self.sessions.items():
            if not session.finished:
                continue
            out[session_id] = self._result_for(session)
        return out

    def _result_for(self, session) -> GenerationResult:
        return GenerationResult(
            prompt_tokens=list(session.prompt_tokens),
            generated_tokens=list(session.generated_tokens),
            prefill_length=len(session.prompt_tokens),
            decode_steps=self._decode_counts[session.session_id],
            finish_reason=session.finish_reason,
        )

    def release(self, session_id: int) -> GenerationResult:
        """Remove a finished session from the engine, returning its result.

        Finished sessions already dropped their KV pages when they retired;
        releasing them removes the remaining bookkeeping so a long-running
        engine's memory stays proportional to the in-flight request set.
        Releasing a session that is still waiting or running raises
        ``ValueError`` — use :meth:`cancel` for those.
        """
        session = self.sessions.get(session_id)
        if session is None:
            raise KeyError(f"unknown session id {session_id}")
        if not session.finished:
            raise ValueError(
                f"session {session_id} is {session.state.value}; only "
                "finished sessions can be released (cancel() aborts "
                "running ones)"
            )
        result = self._result_for(session)
        self._forget(session_id)
        return result

    def cancel(self, session_id: int) -> GenerationResult:
        """Abort a waiting or running session and free its KV pages.

        The request is removed from whichever queue holds it — including a
        still-QUEUED session that was never prefilled, the gateway's
        disconnect-before-admission path — its block references are
        dropped (pages shared with other sessions survive — refcounts,
        not ownership), and its bookkeeping is deleted; it will not appear
        in :meth:`results`.  The partial result (tokens generated so far,
        ``finish_reason == "cancelled"``) is returned — retrievable
        exactly once, since the session is forgotten here.  Cancelling a
        finished session raises ``ValueError`` — collect it with
        :meth:`release` instead.
        """
        session = self.sessions.get(session_id)
        if session is None:
            raise KeyError(f"unknown session id {session_id}")
        if session.finished:
            raise ValueError(
                f"session {session_id} already finished; use release()"
            )
        for queue in (self._waiting, self._prefilling, self._active):
            if session_id in queue:
                queue.remove(session_id)
        # Mid-prefill cancels carry bound pages (reserved all-or-nothing at
        # prefill start) and prefix-cache references; _release_pages drops
        # every block reference, decrementing shared-page refcounts, so the
        # pool's free-page count returns to its pre-submit baseline unless
        # another live session still shares the pages.
        self._release_pages(session)
        session.finish("cancelled")
        self._note_progress(session)
        result = self._result_for(session)
        self._forget(session_id)
        return result

    def _forget(self, session_id: int) -> None:
        del self.sessions[session_id]
        del self._decode_counts[session_id]
        self._admit_seq.pop(session_id, None)
        self._arrival_seq.pop(session_id, None)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def serving_stats(self) -> Dict[str, float]:
        """Batching, scheduling and cache counters (used by the benchmarks).

        The ``global_plan_cache_*`` entries report the *process-wide* plan
        cache (shared with every other engine and every ``tmac_gemm`` call
        in the process), not per-engine traffic — the prefix makes the
        scope explicit.  In paged mode the pool's ``kv_*`` / ``prefix_*``
        counters are merged in.
        """
        plan_stats = plan_cache_stats()
        out = {
            "prefills": self._prefills,
            "prefill_chunks": self._prefill_chunks,
            "preemptions": self.preemptions,
            "capacity_failures": self.capacity_failures,
            "deadline_expirations": self.deadline_expirations,
            "stream_hook_errors": self.stream_hook_errors,
            "queue_depth": self.num_waiting,
            "decode_steps": self.stats.decode_steps,
            "batched_tokens": self.stats.batched_tokens,
            "mean_batch_size": self.stats.mean_batch_size,
            "lut_precomputes": self.stats.lut_precomputes,
            "lut_reuses": self.stats.lut_reuses,
            "ttft_count": self._ttft_count,
            "ttft_mean_s": (self._ttft_sum / self._ttft_count
                            if self._ttft_count else 0.0),
            "decode_step_wall_mean_s": (
                self._decode_wall_sum / self._decode_wall_count
                if self._decode_wall_count else 0.0),
            "peak_kv_bytes": self._peak_kv_bytes,
            "global_plan_cache_hits": plan_stats["hits"],
            "global_plan_cache_misses": plan_stats["misses"],
        }
        # Like the plan-cache counters, the parallel- and process-executor
        # counters are process-wide (every kernel call in the process, not
        # only this engine's); the "parallel_" / "process_" prefixes mark
        # the scope.
        out.update(parallel_executor_stats())
        out.update(process_executor_stats())
        out.update(specialize_stats())
        if self.pool is not None:
            out.update(self.pool.stats())
            out["peak_shared_blocks"] = self._peak_shared_blocks
            # Authoritative at all times (``_track_kv_peak`` only syncs the
            # engine-side copy inside step()): both peak keys agree.
            out["peak_kv_bytes"] = self.pool.peak_kv_bytes
        return out
