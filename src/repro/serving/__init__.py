"""Batched LLM serving on top of the numerical transformer substrate.

The paper establishes the kernel (LUT-based mpGEMM); this subpackage turns
it into a *serving* engine, the production layer the ROADMAP's north star
asks for:

* :mod:`repro.serving.session` — :class:`InferenceSession`: per-request
  state (prompt, KV caches, position, sampling rng, termination).
* :mod:`repro.serving.batch` — one batched decode step: the current token
  of every active session is coalesced into a single ``[B, hidden]``
  activation matrix so each linear layer executes one batched mpGEMM, with
  per-step lookup-table sharing between projections that consume the same
  input (q/k/v and gate/up).
* :mod:`repro.serving.engine` — :class:`ServingEngine`: continuous-batching
  scheduler (admit at token granularity, retire on completion) with plan-
  and LUT-cache statistics.  Given a KV byte budget it schedules against a
  paged KV pool (:mod:`repro.kvcache`): admission by free-page count,
  prefix sharing between requests, preemption-and-requeue when pages run
  out, and chunked prefill for long prompts.

Batched execution is bit-identical to running each request alone for
row-independent kernels (T-MAC); the tests assert per-session token
equality against the sequential :class:`repro.llm.inference.Generator`.
(The BLAS-backed fp32 reference may differ in final logits ulps between
batched and single-row matmuls — see :mod:`repro.serving.batch`.)
"""

from repro.serving.batch import BatchStats, batched_decode_step, shared_input_forward
from repro.serving.engine import ServingEngine
from repro.serving.session import (
    InferenceSession,
    SamplingParams,
    SessionState,
    StreamEvent,
)

__all__ = [
    "ServingEngine",
    "InferenceSession",
    "SamplingParams",
    "SessionState",
    "StreamEvent",
    "BatchStats",
    "batched_decode_step",
    "shared_input_forward",
]
