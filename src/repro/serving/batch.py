"""Batched decode: one forward pass over many sessions' current tokens.

The decode phase of LLM inference is an mpGEMV per linear layer per request
— the memory-bound regime the paper targets.  With continuous batching the
scheduler coalesces the current token of ``B`` sessions into a ``[B,
hidden]`` activation matrix, so every linear layer executes **one** batched
mpGEMM instead of ``B`` independent mpGEMVs, amortizing each weight-matrix
traversal over the whole batch.

Attention remains per-session (each request has its own KV cache, length
and absolute position) and is computed with exactly the float-op sequence
of the sequential path.  The per-layer caches are duck-typed: the engine
passes either plain :class:`repro.llm.layers.KVCache` objects or
:class:`repro.kvcache.paged.PagedKVCache` views over the shared page pool
— both expose the same ``append`` / ``stacked`` contract, and the gathered
page contents are bit-identical to the unpaged arrays.  For row-independent kernels (T-MAC: per-row LUT
quantization, lookup and aggregation) a batched step is therefore
*bit-identical* to running the sessions one by one — the property the
serving tests assert.  The fp32 reference backend delegates to BLAS, whose
blocking may differ between GEMV and batched GEMM, so its logits can
differ in final ulps; generated tokens still match except at exact argmax
near-ties.

Two LUT-level reuses stack on top:

* **Per-step LUT sharing** — the lookup table depends only on the
  activation, not on the weights, so projections consuming the same input
  (q/k/v after the input norm; gate/up after the post-attention norm)
  share one table precompute per step (:func:`shared_input_forward`).
* **Plan caching** — the weights behind every kernel were prepared once
  through the process-wide plan cache (:mod:`repro.core.plan`).

Multi-core execution composes transparently: when the model's backend was
built with ``executor="parallel"`` (:class:`repro.core.executor.
ParallelExecutor`), each batched mpGEMM shards its output columns across
the persistent worker pool — and because batching multiplies the
activation rows per call, the batched decode path crosses the executor's
work threshold at batch sizes where a single-session decode would not.
The shared lookup table built here is read-only after precompute, so one
table safely feeds every worker of every kernel consuming it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.backends.base import LinearOperator
from repro.core.kernel import TMACKernel
from repro.llm.layers import KVCache, apply_rope, attend, rms_norm, silu
from repro.llm.model import TransformerModel

__all__ = ["BatchStats", "shared_input_forward", "batched_decode_step"]


@dataclass
class BatchStats:
    """Counters accumulated across batched decode steps.

    All O(1) running aggregates — a long-running engine records millions of
    steps, so per-step history is deliberately not kept.
    """

    decode_steps: int = 0  #: batched forward passes executed
    batched_tokens: int = 0  #: sum of batch sizes over all steps
    max_batch_size: int = 0  #: largest batch coalesced into one step
    lut_precomputes: int = 0  #: lookup tables actually built
    lut_reuses: int = 0  #: table precomputes avoided by sharing

    def record_step(self, batch_size: int) -> None:
        self.decode_steps += 1
        self.batched_tokens += batch_size
        self.max_batch_size = max(self.max_batch_size, batch_size)

    @property
    def mean_batch_size(self) -> float:
        """Average number of sessions coalesced per decode step."""
        if self.decode_steps == 0:
            return 0.0
        return self.batched_tokens / self.decode_steps


def _lut_signature(op: LinearOperator):
    """Key under which two kernels can share one lookup-table precompute.

    The table is a pure function of the activation and these configuration
    fields; kernels agreeing on all of them accept each other's tables.
    Returns ``None`` for non-T-MAC operators.
    """
    kernel = op.kernel
    if not isinstance(kernel, TMACKernel):
        return None
    cfg = kernel.config
    return (
        kernel.in_features,
        cfg.g,
        cfg.s0,
        cfg.s1,
        cfg.mirror_consolidation,
        cfg.table_quantization,
        cfg.act_dtype,
        kernel.plan.scale_block(cfg),
    )


def shared_input_forward(
    ops: Sequence[LinearOperator],
    x: np.ndarray,
    stats: Optional[BatchStats] = None,
) -> List[np.ndarray]:
    """Apply several linear operators to the *same* input.

    When every operator is backed by a T-MAC kernel with a compatible LUT
    configuration, the activation's lookup tables are precomputed once and
    shared — the per-step LUT reuse of the serving engine.  Otherwise each
    operator runs independently (numerically identical either way).
    """
    signatures = [_lut_signature(op) for op in ops]
    if len(ops) > 1 and signatures[0] is not None and all(
        sig == signatures[0] for sig in signatures
    ):
        table = ops[0].kernel.precompute(x)
        if stats is not None:
            stats.lut_precomputes += 1
            stats.lut_reuses += len(ops) - 1
        return [op.kernel.matmul_with_table(x, table) for op in ops]
    if stats is not None:
        stats.lut_precomputes += sum(1 for sig in signatures if sig is not None)
    return [op(x) for op in ops]


def _batched_attention(
    block, q: np.ndarray, k: np.ndarray, v: np.ndarray,
    positions: np.ndarray, caches: Sequence[KVCache],
) -> np.ndarray:
    """Per-session attention over each session's own KV history.

    ``q``/``k``/``v`` are ``[B, heads, head_dim]`` — one decode token per
    session.  Each session runs the same shared
    :func:`repro.llm.layers.attend` core the sequential path uses, so
    batched and sequential execution produce bit-identical contexts.
    """
    arch = block.arch
    contexts = []
    for i, cache in enumerate(caches):
        cache.append(k[i:i + 1], v[i:i + 1])
        k_all, v_all = cache.stacked()
        contexts.append(
            attend(q[i:i + 1], k_all, v_all, positions[i:i + 1], arch)
        )
    return np.concatenate(contexts, axis=0)


def _batched_block_forward(
    block, x: np.ndarray, positions: np.ndarray,
    caches: Sequence[KVCache], stats: Optional[BatchStats],
) -> np.ndarray:
    """One transformer block over a ``[B, hidden]`` batch of decode tokens."""
    arch = block.arch
    attention = block.attention
    batch = x.shape[0]

    h = rms_norm(x, block.input_norm_weight)
    q_flat, k_flat, v_flat = shared_input_forward(
        [attention.q_proj, attention.k_proj, attention.v_proj], h, stats
    )
    q = q_flat.reshape(batch, arch.num_heads, arch.head_dim)
    k = k_flat.reshape(batch, arch.num_kv_heads, arch.head_dim)
    v = v_flat.reshape(batch, arch.num_kv_heads, arch.head_dim)
    q = apply_rope(q, attention._cos, attention._sin, positions)
    k = apply_rope(k, attention._cos, attention._sin, positions)

    context = _batched_attention(block, q, k, v, positions, caches)
    # Single-operator calls still go through the helper so the LUT-build
    # counters cover every projection, not only the shared ones.
    x = x + shared_input_forward([attention.o_proj], context, stats)[0]

    h = rms_norm(x, block.post_attn_norm_weight)
    gate_out, up_out = shared_input_forward(
        [block.mlp.gate_proj, block.mlp.up_proj], h, stats
    )
    mlp_out = shared_input_forward(
        [block.mlp.down_proj], silu(gate_out) * up_out, stats
    )[0]
    return x + mlp_out


def batched_decode_step(
    model: TransformerModel,
    tokens: Sequence[int],
    positions: Sequence[int],
    caches: Sequence[List[KVCache]],
    stats: Optional[BatchStats] = None,
) -> np.ndarray:
    """One decode step for ``B`` sessions: ``[B]`` tokens -> ``[B, vocab]``.

    Parameters
    ----------
    model:
        The shared transformer (weights and kernels are request-agnostic).
    tokens / positions:
        The current token and absolute position of each session.
    caches:
        Per-session per-layer KV caches; each session's caches are appended
        to in place, exactly as a sequential forward would.
    """
    token_arr = np.asarray(tokens, dtype=np.int64)
    position_arr = np.asarray(positions, dtype=np.int64)
    if token_arr.ndim != 1 or token_arr.size == 0:
        raise ValueError("tokens must be a non-empty 1-D sequence")
    if token_arr.shape != position_arr.shape:
        raise ValueError("tokens and positions must have matching lengths")
    if len(caches) != token_arr.size:
        raise ValueError("one KV-cache list per session is required")
    if token_arr.max() >= model.arch.vocab_size or token_arr.min() < 0:
        raise ValueError("token id out of range")
    if position_arr.max() >= model.arch.max_seq_len:
        raise ValueError("position exceeds max_seq_len")

    x = model.embedding[token_arr]
    for layer_index, block in enumerate(model.blocks):
        layer_caches = [session_caches[layer_index]
                        for session_caches in caches]
        x = _batched_block_forward(block, x, position_arr, layer_caches, stats)
    x = rms_norm(x, model.final_norm_weight)
    logits = shared_input_forward([model.lm_head], x, stats)[0]
    if stats is not None:
        stats.record_step(int(token_arr.size))
    return logits
