"""Evaluation harness: kernel-level error analysis and model-level quality.

* :mod:`repro.eval.nmse` — normalized mean squared error of mpGEMV outputs
  against the unquantized fp reference (paper Table 3).
* :mod:`repro.eval.tasks` — synthetic language-modelling and binary-choice
  tasks standing in for WikiText-2 / lambada_openai / WinoGrande (the paper
  evaluates trained checkpoints on the real datasets; here the *relative*
  quality across engines on identical weights is what is reproduced).
* :mod:`repro.eval.perplexity` — runs a numpy transformer under each engine
  and reports perplexity / accuracy per engine (paper Table 4).
"""

from repro.eval.nmse import kernel_nmse_table, nmse
from repro.eval.perplexity import QualityResult, evaluate_engines
from repro.eval.tasks import (
    SyntheticBinaryChoiceTask,
    SyntheticLMTask,
    make_binary_choice_task,
    make_lm_task,
)

__all__ = [
    "nmse",
    "kernel_nmse_table",
    "SyntheticLMTask",
    "SyntheticBinaryChoiceTask",
    "make_lm_task",
    "make_binary_choice_task",
    "QualityResult",
    "evaluate_engines",
]
