"""Model-level quality evaluation across mpGEMM engines (paper Table 4).

The evaluation runs the *same* model weights through different engines
(full-precision reference, llama.cpp-style dequantization, T-MAC, T-MAC with
fast aggregation) and measures

* perplexity on a language-modelling task, and
* accuracy on a binary-choice task,

so that any quality difference is attributable to the kernels — the paper's
finding being that T-MAC matches llama.cpp exactly and that only fast
aggregation degrades quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eval.tasks import SyntheticBinaryChoiceTask, SyntheticLMTask
from repro.llm.architecture import TransformerArch
from repro.llm.engine import MatmulEngine
from repro.llm.layers import softmax
from repro.llm.model import TransformerModel

__all__ = [
    "sequence_log_likelihood",
    "task_perplexity",
    "binary_choice_accuracy",
    "QualityResult",
    "evaluate_engines",
]


def sequence_log_likelihood(model: TransformerModel, tokens: np.ndarray,
                            context_len: int = 1) -> float:
    """Sum of log-probabilities of ``tokens[context_len:]`` given their prefix."""
    tokens = np.asarray(tokens, dtype=np.int64)
    if tokens.size < context_len + 1:
        raise ValueError("sequence too short for the requested context length")
    logits = model.forward(tokens[:-1])
    log_probs = np.log(softmax(logits, axis=-1) + 1e-12)
    targets = tokens[1:]
    picked = log_probs[np.arange(targets.size), targets]
    return float(picked[context_len - 1:].sum())


def task_perplexity(model: TransformerModel, task: SyntheticLMTask) -> float:
    """Perplexity of the model over all sequences of an LM task."""
    total_log_prob = 0.0
    total_tokens = 0
    for sequence in task.sequences:
        total_log_prob += sequence_log_likelihood(model, sequence)
        total_tokens += sequence.size - 1
    return float(np.exp(-total_log_prob / max(total_tokens, 1)))


def binary_choice_accuracy(model: TransformerModel,
                           task: SyntheticBinaryChoiceTask) -> float:
    """Fraction of items where the correct continuation scores higher."""
    correct = 0
    for context, good, bad in zip(task.contexts, task.correct, task.distractor):
        good_ll = sequence_log_likelihood(
            model, np.concatenate([context, good]), context_len=context.size)
        bad_ll = sequence_log_likelihood(
            model, np.concatenate([context, bad]), context_len=context.size)
        if good_ll >= bad_ll:
            correct += 1
    return correct / max(len(task), 1)


@dataclass(frozen=True)
class QualityResult:
    """Quality metrics for one engine (one row of the Table 4 reproduction)."""

    engine: str
    perplexity: float
    accuracy: float
    extra_perplexities: Dict[str, float] = None

    def perplexity_delta(self, baseline: "QualityResult") -> float:
        """Perplexity increase relative to a baseline engine."""
        return self.perplexity - baseline.perplexity


def evaluate_engines(
    arch: TransformerArch,
    engines: Sequence[MatmulEngine],
    lm_task: SyntheticLMTask,
    choice_task: Optional[SyntheticBinaryChoiceTask] = None,
    weights: Optional[dict] = None,
    seed: int = 0,
    extra_lm_tasks: Optional[Sequence[SyntheticLMTask]] = None,
) -> List[QualityResult]:
    """Evaluate several engines on identical weights and tasks.

    Parameters
    ----------
    arch / weights / seed:
        Model architecture and (optionally) explicit weights shared across
        all engines; random weights are generated from ``seed`` otherwise.
    engines:
        The engines to compare (order preserved in the result).
    lm_task / choice_task / extra_lm_tasks:
        Tasks built with :mod:`repro.eval.tasks` (typically from the
        reference-engine teacher model).
    """
    from repro.llm.model import generate_random_weights

    shared_weights = weights or generate_random_weights(arch, seed=seed)
    results: List[QualityResult] = []
    for engine in engines:
        model = TransformerModel(arch, engine=engine, weights=shared_weights)
        ppl = task_perplexity(model, lm_task)
        acc = binary_choice_accuracy(model, choice_task) if choice_task else 0.0
        extras = {}
        for task in (extra_lm_tasks or []):
            extras[task.name] = task_perplexity(model, task)
        results.append(QualityResult(
            engine=engine.name,
            perplexity=ppl,
            accuracy=acc,
            extra_perplexities=extras,
        ))
    return results
