"""Kernel-level error analysis (paper Table 3).

The paper quantifies two kernel error sources against an unquantized
``W_fp16 A_fp16`` GEMV on Gaussian data:

* weight quantization (common to llama.cpp and T-MAC),
* table quantization (T-MAC only — negligible), and
* fast aggregation (T-MAC +FA — raises NMSE by ~2.5x).

:func:`kernel_nmse_table` reproduces the Table 3 comparison for a list of
matrix shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.baselines.dequant_gemm import DequantGEMM
from repro.core.config import TMACConfig
from repro.core.kernel import TMACKernel
from repro.workloads.generator import make_gemv_case

__all__ = ["nmse", "NMSERow", "kernel_nmse_table"]


def nmse(reference: np.ndarray, output: np.ndarray) -> float:
    """Normalized mean squared error ``mean((out-ref)^2) / mean(ref^2)``."""
    ref = np.asarray(reference, dtype=np.float64)
    out = np.asarray(output, dtype=np.float64)
    if ref.shape != out.shape:
        raise ValueError(
            f"shape mismatch between reference {ref.shape} and output {out.shape}"
        )
    denom = np.mean(ref ** 2)
    if denom == 0:
        raise ValueError("reference signal has zero power")
    return float(np.mean((out - ref) ** 2) / denom)


@dataclass(frozen=True)
class NMSERow:
    """One row of the Table 3 reproduction."""

    shape: str
    llama_cpp: float
    tmac: float
    tmac_fast_aggregation: float

    @property
    def fa_ratio(self) -> float:
        """How much fast aggregation inflates the NMSE over plain T-MAC."""
        return self.tmac_fast_aggregation / self.tmac if self.tmac > 0 else 0.0


def kernel_nmse_table(
    shapes: Iterable,
    bits: int = 4,
    group_size: int = 128,
    seed: int = 0,
) -> List[NMSERow]:
    """Compute the Table 3 NMSE comparison for a set of matmul shapes.

    ``shapes`` yields ``(m, k)`` pairs or
    :class:`~repro.workloads.shapes.MatmulShape` objects.  For every shape
    the same Gaussian weights/activation and the same quantized weights are
    fed to the llama.cpp-style kernel, T-MAC and T-MAC with fast
    aggregation; NMSE is measured against the unquantized reference.
    """
    rows: List[NMSERow] = []
    for shape in shapes:
        if hasattr(shape, "m"):
            m, k, label = shape.m, shape.k, str(shape)
        else:
            m, k = shape
            label = f"{m}x{k}x1"
        case = make_gemv_case(m, k, n=1, bits=bits, group_size=group_size,
                              seed=seed)
        reference = case.reference

        llama = DequantGEMM(case.qweight).matmul(case.activation)
        tmac = TMACKernel(case.qweight, TMACConfig(bits=bits)).matmul(
            case.activation)
        tmac_fa = TMACKernel(
            case.qweight, TMACConfig(bits=bits, fast_aggregation=True)
        ).matmul(case.activation)

        rows.append(NMSERow(
            shape=label,
            llama_cpp=nmse(reference, llama),
            tmac=nmse(reference, tmac),
            tmac_fast_aggregation=nmse(reference, tmac_fa),
        ))
    return rows
