"""``repro_lint`` — invariant-aware static analysis for this repo.

Usage::

    python -m repro.analysis.lint src/                 # human-readable
    python -m repro.analysis.lint src/ --json report.json
    python -m repro.analysis.lint src/ --rules lock-guard,frozen-plan
    python -m repro.analysis.lint --list-rules

Exit status is 0 when no active (unsuppressed) findings remain, 1
otherwise, 2 on usage errors.  Stdlib-only on purpose: the container has
no ruff/mypy, and the CI lint job must be runnable locally byte-for-byte.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Iterable, List, Optional, Sequence

from .checkers import RULE_CHECKERS, RULE_DOCS
from .findings import (
    Finding,
    apply_suppressions,
    parse_suppressions,
    render_report_json,
)

__all__ = ["lint_source", "lint_paths", "iter_python_files", "main"]


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Yield ``.py`` files under ``paths`` in deterministic order."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in ("__pycache__", ".git") and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def lint_source(path: str, source: str,
                rules: Optional[Sequence[str]] = None) -> List[Finding]:
    """Run the selected rules over one file's source text."""
    selected = list(rules) if rules is not None else list(RULE_CHECKERS)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            rule="parse-error",
            path=path,
            line=exc.lineno or 0,
            col=exc.offset or 0,
            message=f"cannot parse file: {exc.msg}",
        )]
    findings: List[Finding] = []
    for rule in selected:
        findings.extend(RULE_CHECKERS[rule](path, tree))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return apply_suppressions(findings, parse_suppressions(source), path)


def lint_paths(paths: Sequence[str],
               rules: Optional[Sequence[str]] = None,
               ) -> tuple[List[Finding], List[str]]:
    """Lint every python file under ``paths``.

    Returns ``(findings, checked_files)`` with findings in file order.
    """
    findings: List[Finding] = []
    checked: List[str] = []
    for filepath in iter_python_files(paths):
        try:
            with open(filepath, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            findings.append(Finding(
                rule="parse-error", path=filepath, line=0, col=0,
                message=f"cannot read file: {exc}",
            ))
            continue
        checked.append(filepath)
        findings.extend(lint_source(filepath, source, rules))
    return findings, checked


def _parse_rules(spec: str) -> List[str]:
    rules = [r.strip() for r in spec.split(",") if r.strip()]
    unknown = [r for r in rules if r not in RULE_CHECKERS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule(s): {', '.join(unknown)}; "
            f"known: {', '.join(RULE_CHECKERS)}"
        )
    return rules


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Invariant-aware static analysis for the repro tree.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the machine-readable report "
                             "('-' for stdout)")
    parser.add_argument("--rules", type=_parse_rules, default=None,
                        metavar="RULE[,RULE]",
                        help="run only these rules")
    parser.add_argument("--list-rules", action="store_true",
                        help="list available rules and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the human-readable listing")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULE_CHECKERS:
            print(f"{rule}: {RULE_DOCS[rule]}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis.lint src/)")

    findings, checked = lint_paths(args.paths, args.rules)
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]

    if args.json is not None:
        payload = render_report_json(findings, checked, list(args.paths))
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload)

    if not args.quiet and args.json != "-":
        for finding in active:
            print(finding.render())
        print(
            f"repro-lint: {len(checked)} files checked, "
            f"{len(active)} finding(s), {len(suppressed)} suppressed"
        )
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
