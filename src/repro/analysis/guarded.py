"""The repo-specific invariant registry that drives ``repro_lint``.

This is deliberately *data*, not code: the checkers in
:mod:`repro.analysis.checkers` are generic AST machinery, and everything
they know about this codebase — which classes guard which attributes with
which lock, which constructors publish frozen plan artifacts, which calls
count as freezing, which packages are deterministic hot paths — lives
here, in one reviewable place.  A new guarded structure or plan-artifact
type is enforced by adding one registry entry, not by writing a checker.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

__all__ = [
    "GUARDED_ATTRS",
    "LOCKED_SUFFIX",
    "CONSTRUCTOR_METHODS",
    "PLAN_ARTIFACT_CONSTRUCTORS",
    "PLAN_OBJECT_NAMES",
    "PLAN_BUILD_FUNCTIONS",
    "PLAN_BUILD_METHODS",
    "FREEZING_CALL_NAMES",
    "DETERMINISM_SCOPES",
    "FUTURE_SCOPED_FILES",
]

# --------------------------------------------------------------------- #
# lock-guard
# --------------------------------------------------------------------- #

#: class name -> (lock attribute, attributes only touched under that lock).
#: Scope: accesses *inside the owning class*.  Within the class an access
#: is legal in ``__init__`` (construction happens-before publication),
#: lexically inside ``with self.<lock>:``, or in a method whose name ends
#: with ``_locked`` (the caller-holds-the-lock convention).
GUARDED_ATTRS: Dict[str, Tuple[str, FrozenSet[str]]] = {
    # core/plan.py — the single-flight plan cache and the lazy gather build
    "PlanCache": ("_lock", frozenset({
        "_plans", "_order", "_building", "hits", "misses",
    })),
    "KernelPlan": ("_gather_lock", frozenset({
        "_gather_cache", "_spec_cache",
    })),
    # core/shm.py — shared-memory publication and the process pool
    "PlanSegmentRegistry": ("_lock", frozenset({"_segments"})),
    "ProcessWorkerPool": ("_lock", frozenset({
        "_workers", "_arena", "_arena_bytes", "_call_seq", "_results",
        "restarts",
    })),
    # core/specialize.py — the atomic stats block behind executor and
    # specialization counters (re-exported by core/executor.py)
    "_StatsBlock": ("_lock", frozenset({"_counts"})),
    # server/queue.py — gateway admission bookkeeping
    "RequestLifecycle": ("_lock", frozenset({
        "_in_flight", "_mean_service_s", "admitted_total", "rejected_total",
    })),
    # server/runner.py — pending-submit count shared by loop + callers
    "EngineRunner": ("_pending_lock", frozenset({"_pending_submits"})),
    # server/metrics.py — scrape-vs-sample races
    "Counter": ("_lock", frozenset({"_values"})),
    "Gauge": ("_lock", frozenset({"_value"})),
    "Histogram": ("_lock", frozenset({"_bucket_counts", "_count", "_sum"})),
}

#: Methods named ``*_locked`` assert "my caller holds the lock" — the
#: lock-guard rule trusts the convention instead of cross-function
#: analysis.  The linter still flags a ``*_locked`` method called without
#: the lock indirectly via the attributes the *caller* touches.
LOCKED_SUFFIX = "_locked"

#: Methods where unguarded access is construction, not sharing.
CONSTRUCTOR_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

# --------------------------------------------------------------------- #
# frozen-plan
# --------------------------------------------------------------------- #

#: Constructors that publish plan artifacts: every numpy array passed in
#: must be frozen (``setflags(write=False)``) in the same function.
PLAN_ARTIFACT_CONSTRUCTORS = frozenset({
    "PreprocessedWeights",  # core/weights.py — offline weight operand
    "_LookupTables",        # core/plan.py — precomputed gather metadata
    "SpecializedKernel",    # core/specialize.py — compiled codes-dot kernel
})

#: Parameter/variable names the attribute-write check treats as plan
#: objects wherever they appear (the codebase-wide convention).
PLAN_OBJECT_NAMES = frozenset({"plan", "kernel_plan"})

#: Free functions allowed to build/assign plan state.
PLAN_BUILD_FUNCTIONS = frozenset({"build_plan"})

#: ``KernelPlan`` methods that are part of the offline build phase
#: (everything else must treat the plan as immutable).
PLAN_BUILD_METHODS = frozenset({
    "__init__", "__post_init__", "_build_lookup_tables_locked",
    "_build_specialized_locked",
})

#: A call to any of these counts as freeze evidence inside a function:
#: ``setflags`` (with ``write=False``), anything containing "freeze",
#: and ``_view`` (``repro.core.shm._view`` returns read-only views by
#: default — the worker-side reconstruction path).
FREEZING_CALL_NAMES = frozenset({"_view"})
FREEZING_NAME_FRAGMENT = "freeze"

# --------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------- #

#: Path fragments marking deterministic hot paths: no wall-clock time, no
#: global/unseeded rngs — clocks and generators must be injected.
DETERMINISM_SCOPES = ("repro/core/", "repro/serving/", "repro/kvcache/")

# --------------------------------------------------------------------- #
# no-swallowed-futures
# --------------------------------------------------------------------- #

#: File basenames where every ``concurrent.futures`` result must be
#: consumed or explicitly discarded (``_`` / ``_discard*`` names).
FUTURE_SCOPED_FILES = frozenset({"executor.py", "runner.py"})
