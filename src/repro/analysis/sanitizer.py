"""Runtime concurrency sanitizer: lock-order recording + plan canaries.

Enabled with ``REPRO_SANITIZE=1`` (see :func:`enabled`).  Two detectors:

**Lock-order graph.**  :func:`install` replaces :func:`threading.Lock`
with a wrapper that tags every lock with its creation site
(``file:line``) and records, per thread, the order in which lock *sites*
are acquired while other locks are held.  An edge ``A -> B`` means "a
thread blocked on a B-site lock while holding an A-site lock"; a cycle
in the site graph is a lock-order inversion — a potential deadlock even
if the run happened not to interleave badly.  Non-blocking acquires
(``acquire(False)`` / ``timeout=0``) hold but never add edges: a trylock
cannot participate in a deadlock cycle (this also keeps
``threading.Condition``'s internal ownership probe quiet).

**Plan-mutation canary.**  :func:`plan_canary` checksums a plan's
published artifacts (preprocessed weight planes, scales/zeros, lazily
built gather tables) around an executor dispatch and raises
:class:`PlanMutationError` if any existing artifact's bytes drift —
plans are frozen and content-addressed, so drift means corruption.
Artifacts that *appear* during the dispatch (the lazy gather build) are
merged into the baseline, not flagged.

Environment knobs:

``REPRO_SANITIZE=1``
    Master switch; everything below is inert without it.
``REPRO_SANITIZE_LOCKORDER=raise``
    Raise :class:`LockOrderInversionError` at the acquire that closes a
    cycle (default: record only; tests assert the record is empty).
``REPRO_SANITIZE_GRAPH_OUT=<path>``
    Write the lock-order graph snapshot to ``<path>`` at interpreter
    exit (CI stores it; ``benchmarks/results/lock_order_graph.txt`` is
    the tracked snapshot).

Granularity is per creation *site*, not per lock instance — the classic
lockdep trade-off: orders generalize across instances (every
``PlanCache._lock`` is one node), at the cost of not modelling ordered
acquisition of two locks born at the same line.
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
import weakref
import zlib
from contextlib import contextmanager, nullcontext
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "enabled",
    "set_enabled",
    "install",
    "uninstall",
    "LockOrderGraph",
    "LockOrderInversionError",
    "global_graph",
    "PlanCanaryRegistry",
    "PlanMutationError",
    "plan_canary",
    "stats",
    "reset_stats",
    "write_graph_snapshot",
]

_TRUTHY = ("1", "true", "yes", "on")

#: Real primitives captured before any patching, so the sanitizer's own
#: bookkeeping never recurses into the instrumented factory.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

_ENABLED = os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY
_RAISE_ON_INVERSION = (
    os.environ.get("REPRO_SANITIZE_LOCKORDER", "").strip().lower() == "raise"
)


def enabled() -> bool:
    """Whether the sanitizer is active (``REPRO_SANITIZE=1``)."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    """Override the env-derived switch (tests)."""
    global _ENABLED
    _ENABLED = bool(value)


def _short_site(filename: str, lineno: int) -> str:
    parts = filename.replace(os.sep, "/").split("/")
    return "/".join(parts[-3:]) + f":{lineno}"


# --------------------------------------------------------------------- #
# Lock-order graph
# --------------------------------------------------------------------- #

class LockOrderInversionError(AssertionError):
    """A lock acquisition closed a cycle in the lock-order graph."""


class LockOrderGraph:
    """Directed graph of lock-site acquisition order, with cycle checks."""

    def __init__(self, raise_on_inversion: bool = False) -> None:
        self._mu = _REAL_RLOCK()
        #: site -> {successor site -> times observed}
        self._edges: Dict[str, Dict[str, int]] = {}
        #: unique (held_site, new_site, cycle path) triples
        self._inversions: List[Tuple[str, str, Tuple[str, ...]]] = []
        self._inversion_keys: set = set()
        self.raise_on_inversion = raise_on_inversion

    def record(self, held_site: str, new_site: str) -> None:
        """Record "blocked on ``new_site`` while holding ``held_site``"."""
        if held_site == new_site:
            return  # per-site granularity cannot order same-site locks
        with self._mu:
            bucket = self._edges.setdefault(held_site, {})
            first = new_site not in bucket
            bucket[new_site] = bucket.get(new_site, 0) + 1
            if not first:
                return  # cycle status cannot change on a repeat edge
            path = self._path(new_site, held_site)
            if path is None:
                return
            key = (held_site, new_site)
            if key not in self._inversion_keys:
                self._inversion_keys.add(key)
                self._inversions.append((held_site, new_site, tuple(path)))
        if self.raise_on_inversion:
            cycle = " -> ".join((*path, new_site))
            raise LockOrderInversionError(
                f"lock-order inversion: acquiring {new_site} while holding "
                f"{held_site}, but the reverse order exists: {cycle}"
            )

    def _path(self, src: str, dst: str) -> Optional[List[str]]:
        """DFS path ``src -> ... -> dst`` through recorded edges."""
        stack = [(src, [src])]
        seen = {src}
        while stack:
            node, path = stack.pop()
            if node == dst:
                return path
            for succ in self._edges.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    def edge_count(self) -> int:
        with self._mu:
            return sum(len(b) for b in self._edges.values())

    def inversions(self) -> List[Tuple[str, str, Tuple[str, ...]]]:
        with self._mu:
            return list(self._inversions)

    def reset(self) -> None:
        with self._mu:
            self._edges.clear()
            self._inversions.clear()
            self._inversion_keys.clear()

    def render(self) -> str:
        """Stable text snapshot (sorted; diffable across runs)."""
        with self._mu:
            lines = ["# lock-order graph (site -> site: observations)"]
            for src in sorted(self._edges):
                for dst in sorted(self._edges[src]):
                    lines.append(f"{src} -> {dst}: {self._edges[src][dst]}")
            lines.append(f"# edges: {sum(len(b) for b in self._edges.values())}")
            lines.append(f"# inversions: {len(self._inversions)}")
            for held, new, path in self._inversions:
                cycle = " -> ".join((*path, new))
                lines.append(f"# INVERSION {held} vs {new}: {cycle}")
            return "\n".join(lines) + "\n"


_GLOBAL_GRAPH = LockOrderGraph(raise_on_inversion=_RAISE_ON_INVERSION)


def global_graph() -> LockOrderGraph:
    return _GLOBAL_GRAPH


_tls = threading.local()


def _held_stack() -> List["_SanitizedLock"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


class _SanitizedLock:
    """Drop-in ``threading.Lock`` wrapper feeding the lock-order graph."""

    __slots__ = ("_real", "site", "_graph")

    def __init__(self, site: str, graph: LockOrderGraph) -> None:
        self._real = _REAL_LOCK()
        self.site = site
        self._graph = graph

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        stack = _held_stack()
        # Trylocks never block, so they cannot close a deadlock cycle —
        # and a lock already held by this thread is a reentrancy probe
        # (e.g. Condition._is_owned), not an ordering observation.
        if blocking and timeout != 0 and self not in stack and stack:
            self._graph.record(stack[-1].site, self.site)
        got = self._real.acquire(blocking, timeout)
        if got:
            stack.append(self)
        return got

    def release(self) -> None:
        self._real.release()
        stack = _held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                break

    def locked(self) -> bool:
        return self._real.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def _at_fork_reinit(self) -> None:  # pragma: no cover - fork children
        self._real._at_fork_reinit()
        _tls.stack = []

    def __repr__(self) -> str:
        state = "locked" if self._real.locked() else "unlocked"
        return f"<_SanitizedLock({state}) site={self.site}>"


_installed = False


def _lock_factory() -> _SanitizedLock:
    frame = sys._getframe(1)
    site = _short_site(frame.f_code.co_filename, frame.f_lineno)
    return _SanitizedLock(site, _GLOBAL_GRAPH)


def install() -> bool:
    """Patch ``threading.Lock`` so new locks feed the global graph.

    Idempotent; a no-op (returning ``False``) when the sanitizer is
    disabled.  Call as early as possible: locks created before the patch
    (including ``from threading import Lock`` imports) stay untracked.
    ``threading.RLock`` is left alone — reentrant locks in this codebase
    guard no registered state, and wrapping them would noise the graph
    with interpreter-internal reentrancy.
    """
    global _installed
    if not _ENABLED or _installed:
        return _installed
    threading.Lock = _lock_factory  # type: ignore[misc]
    _installed = True
    return True


def uninstall() -> None:
    """Restore the real ``threading.Lock`` factory (tests)."""
    global _installed
    threading.Lock = _REAL_LOCK  # type: ignore[misc]
    _installed = False


# --------------------------------------------------------------------- #
# Plan-mutation canary
# --------------------------------------------------------------------- #

class PlanMutationError(AssertionError):
    """A plan artifact's bytes changed across an executor dispatch."""


#: Arrays above this many bytes are checksummed by head+tail sample —
#: the canary runs around *every* dispatch and must stay cheap.
_FULL_CHECKSUM_MAX = 1 << 20
_SAMPLE_BYTES = 1 << 16


def _array_checksum(arr) -> int:
    data = arr.ravel()
    raw = data.view("u1") if data.dtype.kind != "V" else data
    header = f"{arr.shape}|{arr.dtype.str}".encode()
    if arr.nbytes <= _FULL_CHECKSUM_MAX:
        return zlib.crc32(raw.tobytes(), zlib.crc32(header))
    crc = zlib.crc32(header)
    crc = zlib.crc32(raw[:_SAMPLE_BYTES].tobytes(), crc)
    crc = zlib.crc32(raw[-_SAMPLE_BYTES:].tobytes(), crc)
    return crc


def _plan_checksums(plan) -> Dict[str, int]:
    """Checksum every published artifact of a plan (best-effort duck-typed)."""
    sums: Dict[str, int] = {}
    weights = getattr(plan, "weights", None)
    if weights is not None:
        for name in ("scales", "zeros"):
            arr = getattr(weights, name, None)
            if arr is not None:
                sums[f"weights.{name}"] = _array_checksum(arr)
        for group in ("index_planes", "packed_planes"):
            for i, arr in enumerate(getattr(weights, group, ()) or ()):
                sums[f"weights.{group}[{i}]"] = _array_checksum(arr)
    cache = getattr(plan, "_gather_cache", None)
    if cache is not None:
        for mirrored, tables in list(cache.items()):
            prefix = f"gather[{mirrored}]"
            for i, arr in enumerate(getattr(tables, "folded", ()) or ()):
                sums[f"{prefix}.folded[{i}]"] = _array_checksum(arr)
            for group in ("signs", "offsets"):
                seq = getattr(tables, group, None)
                for i, arr in enumerate(seq or ()):
                    sums[f"{prefix}.{group}[{i}]"] = _array_checksum(arr)
    spec_cache = getattr(plan, "_spec_cache", None)
    if spec_cache is not None:
        # Specialized kernels mostly hold references to arrays already
        # checksummed above; the scale*zero product is the one artifact
        # they own, and a mutation there would corrupt every recombine.
        for key, kernel in list(spec_cache.items()):
            arr = getattr(kernel, "sz", None)
            if arr is not None:
                sums[f"spec[{key}].sz"] = _array_checksum(arr)
    return sums


class PlanCanaryRegistry:
    """Baseline store + drift detector for plan artifacts."""

    def __init__(self) -> None:
        self._mu = _REAL_LOCK()
        #: id(plan) -> {artifact name -> crc32}
        self._baselines: Dict[int, Dict[str, int]] = {}
        self.trips = 0

    def _evict(self, key: int) -> None:
        with self._mu:
            self._baselines.pop(key, None)

    def _baseline_for(self, plan) -> Dict[str, int]:
        key = id(plan)
        with self._mu:
            baseline = self._baselines.get(key)
        if baseline is not None:
            return baseline
        baseline = _plan_checksums(plan)
        with self._mu:
            existing = self._baselines.setdefault(key, baseline)
        if existing is baseline:
            try:
                weakref.finalize(plan, self._evict, key)
            except TypeError:  # pragma: no cover - non-weakrefable plan
                pass
        return existing

    @contextmanager
    def canary(self, plan) -> Iterator[None]:
        baseline = self._baseline_for(plan)
        try:
            yield
        finally:
            current = _plan_checksums(plan)
            drifted = []
            with self._mu:
                for name, crc in current.items():
                    before = baseline.get(name)
                    if before is None:
                        # Lazily built mid-dispatch (gather tables):
                        # publication, not mutation — extend the baseline.
                        baseline[name] = crc
                    elif before != crc:
                        drifted.append(name)
                if drifted:
                    self.trips += 1
            if drifted:
                raise PlanMutationError(
                    "plan artifact(s) mutated across an executor dispatch: "
                    + ", ".join(sorted(drifted))
                    + " — plans are frozen and content-addressed; this is "
                    "silent corruption"
                )

    def tracked(self) -> int:
        with self._mu:
            return len(self._baselines)

    def reset(self) -> None:
        with self._mu:
            self._baselines.clear()
            self.trips = 0


_GLOBAL_CANARIES = PlanCanaryRegistry()


def plan_canary(plan):
    """Context manager guarding one executor dispatch of ``plan``.

    Near-zero cost when the sanitizer is off (returns ``nullcontext``).
    """
    if not _ENABLED:
        return nullcontext()
    return _GLOBAL_CANARIES.canary(plan)


# --------------------------------------------------------------------- #
# Reporting
# --------------------------------------------------------------------- #

def stats() -> dict:
    """Counters the test-session gate asserts on."""
    return {
        "enabled": _ENABLED,
        "installed": _installed,
        "lock_order_edges": _GLOBAL_GRAPH.edge_count(),
        "lock_order_inversions": [
            {"held": held, "acquired": new, "cycle": list(path) + [new]}
            for held, new, path in _GLOBAL_GRAPH.inversions()
        ],
        "canary_trips": _GLOBAL_CANARIES.trips,
        "plans_tracked": _GLOBAL_CANARIES.tracked(),
    }


def reset_stats() -> None:
    _GLOBAL_GRAPH.reset()
    _GLOBAL_CANARIES.reset()


def write_graph_snapshot(path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_GLOBAL_GRAPH.render())


_graph_out = os.environ.get("REPRO_SANITIZE_GRAPH_OUT", "").strip()
if _ENABLED and _graph_out:  # pragma: no cover - exercised by CI leg
    atexit.register(write_graph_snapshot, _graph_out)
