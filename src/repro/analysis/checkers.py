"""AST checkers for the five ``repro_lint`` rules.

Each checker is a function ``(path, tree) -> list[Finding]``.  The rules
are intentionally *lexical*: they check what can be decided from one
file's AST plus the registry in :mod:`repro.analysis.guarded`, and rely
on suppression comments (with mandatory reasons) for the rare pattern
that is correct but not lexically provable — e.g. a double-checked
lock-free fast path.  Cheap and predictable beats clever and flaky for a
gate that runs on every PR.

Rules
-----
``frozen-plan``
    Plan artifacts are immutable after publication: constructors named in
    :data:`~repro.analysis.guarded.PLAN_ARTIFACT_CONSTRUCTORS` may only be
    called in functions that show freeze evidence (``setflags(write=False)``,
    a ``*freeze*`` call, or a read-only ``_view``), and attribute/subscript
    writes to plan objects are confined to the offline build phase.
``lock-guard``
    Attributes registered in :data:`~repro.analysis.guarded.GUARDED_ATTRS`
    are only touched inside ``with self.<lock>:`` in their owning class
    (or in ``__init__`` / ``*_locked`` methods).
``shm-lifecycle``
    Every ``SharedMemory(create=True)`` is paired with ``weakref.finalize``
    or an ``atexit`` registration in the same function, or the module has a
    module-level atexit sweep.
``determinism``
    No wall-clock time or global/unseeded rngs in ``core/``, ``serving/``,
    ``kvcache/`` — clocks and generators must be injected.
``no-swallowed-futures``
    In ``executor.py`` / ``runner.py``, every ``.submit(...)`` result is
    consumed (loaded later, returned) or explicitly discarded (``_`` /
    ``_discard*`` names).
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Tuple

from .findings import Finding
from . import guarded

__all__ = ["RULE_CHECKERS", "RULE_DOCS"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _call_tail(func: ast.expr) -> str:
    """Last dotted component of a call target (``a.b.c()`` -> ``c``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _root_name(node: ast.expr) -> Optional[str]:
    """Root name of an attribute/subscript chain (``a.b[c].d`` -> ``a``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _walk_scope(node: ast.AST) -> Iterable[ast.AST]:
    """Yield nodes of one scope without descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _FUNC_NODES + (ast.Lambda,)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _scopes(tree: ast.Module) -> Iterable[ast.AST]:
    """The module plus every (possibly nested) function definition."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, _FUNC_NODES):
            yield node


# --------------------------------------------------------------------- #
# frozen-plan
# --------------------------------------------------------------------- #

def _is_freeze_call(node: ast.Call) -> bool:
    tail = _call_tail(node.func)
    if tail == "setflags":
        for kw in node.keywords:
            if kw.arg == "write" and isinstance(kw.value, ast.Constant) \
                    and kw.value.value is False:
                return True
        return False
    if guarded.FREEZING_NAME_FRAGMENT in tail.lower():
        return True
    return tail in guarded.FREEZING_CALL_NAMES


def _has_freeze_evidence(scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, ast.Call) and _is_freeze_call(node):
            return True
    return False


class _FrozenPlanVisitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        self._class_stack: List[str] = []
        self._func_stack: List[ast.AST] = []
        self._evidence: Dict[int, bool] = {}

    # -- scope tracking ------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_func(self, node: ast.AST) -> None:
        self._func_stack.append(node)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def _enclosing_scope(self, tree_fallback: bool = True) -> Optional[ast.AST]:
        return self._func_stack[-1] if self._func_stack else None

    def _func_name(self) -> str:
        node = self._enclosing_scope()
        return getattr(node, "name", "") if node is not None else ""

    def _in_class(self, name: str) -> bool:
        return bool(self._class_stack) and self._class_stack[-1] == name

    # -- part (a): artifact constructors need freeze evidence ----------
    def visit_Call(self, node: ast.Call) -> None:
        tail = _call_tail(node.func)
        if tail in guarded.PLAN_ARTIFACT_CONSTRUCTORS:
            scope = self._enclosing_scope()
            key = id(scope)
            if key not in self._evidence:
                self._evidence[key] = _has_freeze_evidence(scope) \
                    if scope is not None else False
            if not self._evidence[key]:
                self.findings.append(Finding(
                    rule="frozen-plan",
                    path=self.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{tail}(...) built without freeze evidence: call "
                        "setflags(write=False) on every array before "
                        "publishing the artifact"
                    ),
                    symbol=tail,
                ))
        self.generic_visit(node)

    # -- part (b): no plan writes outside the build phase --------------
    def _check_write_target(self, target: ast.expr) -> None:
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        root = _root_name(target)
        if root in guarded.PLAN_OBJECT_NAMES:
            if self._func_name() in guarded.PLAN_BUILD_FUNCTIONS:
                return
            self.findings.append(Finding(
                rule="frozen-plan",
                path=self.path,
                line=target.lineno,
                col=target.col_offset,
                message=(
                    f"write to plan object '{root}' outside the offline "
                    "build phase — plans are frozen after publication"
                ),
                symbol=root,
            ))
        elif (root == "self" and self._in_class("KernelPlan")
                and isinstance(target, ast.Attribute)
                and self._func_name() not in guarded.PLAN_BUILD_METHODS):
            self.findings.append(Finding(
                rule="frozen-plan",
                path=self.path,
                line=target.lineno,
                col=target.col_offset,
                message=(
                    f"KernelPlan.{target.attr} assigned outside the build "
                    "phase — plans are frozen after publication"
                ),
                symbol=f"KernelPlan.{target.attr}",
            ))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_write_target(node.target)
        self.generic_visit(node)


def check_frozen_plan(path: str, tree: ast.Module) -> List[Finding]:
    visitor = _FrozenPlanVisitor(path)
    visitor.visit(tree)
    return visitor.findings


# --------------------------------------------------------------------- #
# lock-guard
# --------------------------------------------------------------------- #

def _is_self_lock(expr: ast.expr, lock_attr: str) -> bool:
    return (isinstance(expr, ast.Attribute) and expr.attr == lock_attr
            and isinstance(expr.value, ast.Name) and expr.value.id == "self")


def check_lock_guard(path: str, tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []

    def scan(node: ast.AST, depth: int, cls: str, lock_attr: str,
             attrs: frozenset) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = depth
            for item in node.items:
                scan(item.context_expr, depth, cls, lock_attr, attrs)
                if _is_self_lock(item.context_expr, lock_attr):
                    inner += 1
            for stmt in node.body:
                scan(stmt, inner, cls, lock_attr, attrs)
            return
        if isinstance(node, _FUNC_NODES):
            # A nested def runs later, possibly after the lock is gone —
            # the with-context does not carry into deferred bodies.
            for stmt in node.body:
                scan(stmt, 0, cls, lock_attr, attrs)
            return
        if isinstance(node, ast.Lambda):
            scan(node.body, 0, cls, lock_attr, attrs)
            return
        if (isinstance(node, ast.Attribute) and node.attr in attrs
                and isinstance(node.value, ast.Name)
                and node.value.id == "self" and depth == 0):
            findings.append(Finding(
                rule="lock-guard",
                path=path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{cls}.{node.attr} accessed outside 'with "
                    f"self.{lock_attr}:' — guarded attributes are only "
                    "touched under their lock (or in a *_locked method)"
                ),
                symbol=f"{cls}.{node.attr}",
            ))
        for child in ast.iter_child_nodes(node):
            scan(child, depth, cls, lock_attr, attrs)

    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        entry = guarded.GUARDED_ATTRS.get(node.name)
        if entry is None:
            continue
        lock_attr, attrs = entry
        for item in node.body:
            if not isinstance(item, _FUNC_NODES):
                continue
            if item.name in guarded.CONSTRUCTOR_METHODS:
                continue
            if item.name.endswith(guarded.LOCKED_SUFFIX):
                continue
            for stmt in item.body:
                scan(stmt, 0, node.name, lock_attr, attrs)
    return findings


# --------------------------------------------------------------------- #
# shm-lifecycle
# --------------------------------------------------------------------- #

def _is_shm_create(node: ast.Call) -> bool:
    if _call_tail(node.func) != "SharedMemory":
        return False
    for kw in node.keywords:
        if kw.arg == "create" and isinstance(kw.value, ast.Constant) \
                and kw.value.value is True:
            return True
    return False


def _is_lifecycle_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "finalize":
            return True
        if func.attr == "register" and isinstance(func.value, ast.Name) \
                and func.value.id == "atexit":
            return True
    elif isinstance(func, ast.Name) and func.id == "finalize":
        return True
    return False


def _module_has_atexit_sweep(tree: ast.Module) -> bool:
    for stmt in tree.body:
        if isinstance(stmt, _FUNC_NODES):
            for deco in stmt.decorator_list:
                if isinstance(deco, ast.Attribute) and deco.attr == "register" \
                        and isinstance(deco.value, ast.Name) \
                        and deco.value.id == "atexit":
                    return True
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            if _is_lifecycle_call(stmt.value):
                return True
    return False


def check_shm_lifecycle(path: str, tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []
    module_sweep = _module_has_atexit_sweep(tree)
    for scope in _scopes(tree):
        creates = [n for n in _walk_scope(scope)
                   if isinstance(n, ast.Call) and _is_shm_create(n)]
        if not creates:
            continue
        paired = any(isinstance(n, ast.Call) and _is_lifecycle_call(n)
                     for n in _walk_scope(scope))
        if paired or module_sweep:
            continue
        for call in creates:
            findings.append(Finding(
                rule="shm-lifecycle",
                path=path,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    "SharedMemory(create=True) without a weakref.finalize/"
                    "atexit registration in the same scope — leaked "
                    "segments survive the process"
                ),
                symbol="SharedMemory",
            ))
    return findings


# --------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------- #

_WALL_CLOCK_ATTRS = frozenset({"time", "time_ns"})


def check_determinism(path: str, tree: ast.Module) -> List[Finding]:
    norm = path.replace(os.sep, "/")
    if not any(frag in norm for frag in guarded.DETERMINISM_SCOPES):
        return []
    findings: List[Finding] = []

    def flag(node: ast.AST, symbol: str, what: str) -> None:
        findings.append(Finding(
            rule="determinism",
            path=path,
            line=node.lineno,
            col=node.col_offset,
            message=(
                f"{what} in a deterministic hot path — inject a "
                "clock/seeded generator instead"
            ),
            symbol=symbol,
        ))

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "random":
                flag(node, "random", "import from the global 'random' module")
            elif node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_CLOCK_ATTRS:
                        flag(node, f"time.{alias.name}",
                             f"wall-clock time.{alias.name} import")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    isinstance(func.value, ast.Name):
                base = func.value.id
                if base == "time" and func.attr in _WALL_CLOCK_ATTRS:
                    flag(node, f"time.{func.attr}",
                         f"wall-clock time.{func.attr}() call")
                elif base == "random":
                    flag(node, f"random.{func.attr}",
                         f"global random.{func.attr}() call")
            elif isinstance(func, ast.Attribute) and \
                    isinstance(func.value, ast.Attribute) and \
                    func.value.attr == "random" and \
                    isinstance(func.value.value, ast.Name) and \
                    func.value.value.id in ("np", "numpy"):
                if func.attr == "default_rng" and (node.args or node.keywords):
                    continue  # explicitly seeded generator: allowed
                flag(node, f"np.random.{func.attr}",
                     f"np.random.{func.attr} call (global/unseeded rng)")
    return findings


# --------------------------------------------------------------------- #
# no-swallowed-futures
# --------------------------------------------------------------------- #

def _is_discard_name(name: str) -> bool:
    return name == "_" or name.startswith("_discard")


def _contains_submit(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call) and _call_tail(node.func) == "submit":
            return True
    return False


def check_no_swallowed_futures(path: str, tree: ast.Module) -> List[Finding]:
    if os.path.basename(path) not in guarded.FUTURE_SCOPED_FILES:
        return []
    findings: List[Finding] = []
    for scope in _scopes(tree):
        submits: List[Tuple[str, ast.AST]] = []
        for node in _walk_scope(scope):
            if isinstance(node, ast.Expr) and \
                    isinstance(node.value, ast.Call) and \
                    _call_tail(node.value.func) == "submit":
                findings.append(Finding(
                    rule="no-swallowed-futures",
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "future from .submit(...) dropped — bind it and "
                        "consume the result, or assign to '_' to discard "
                        "explicitly"
                    ),
                    symbol="submit",
                ))
            elif isinstance(node, ast.Assign) and _contains_submit(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name) and \
                            not _is_discard_name(target.id):
                        submits.append((target.id, node))
        if not submits:
            continue
        # Loads are collected from the FULL subtree: a closure consuming
        # the future (e.g. a done-callback) counts as consumption.
        loads = {n.id for n in ast.walk(scope)
                 if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)}
        for name, node in submits:
            if name not in loads:
                findings.append(Finding(
                    rule="no-swallowed-futures",
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"future '{name}' from .submit(...) is never "
                        "consumed — await/result it, or rename to '_' to "
                        "discard explicitly"
                    ),
                    symbol=name,
                ))
    return findings


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #

RULE_CHECKERS = {
    "frozen-plan": check_frozen_plan,
    "lock-guard": check_lock_guard,
    "shm-lifecycle": check_shm_lifecycle,
    "determinism": check_determinism,
    "no-swallowed-futures": check_no_swallowed_futures,
}

RULE_DOCS = {
    "frozen-plan": (
        "plan artifacts are setflags(write=False)-frozen before "
        "publication; no plan writes outside the offline build phase"
    ),
    "lock-guard": (
        "registered guarded attributes only accessed under their lock "
        "in the owning class"
    ),
    "shm-lifecycle": (
        "SharedMemory(create=True) paired with weakref.finalize/atexit "
        "in the same scope"
    ),
    "determinism": (
        "no wall-clock time or global/unseeded rngs in core/, serving/, "
        "kvcache/"
    ),
    "no-swallowed-futures": (
        "every concurrent.futures result consumed or explicitly "
        "discarded in executor.py/runner.py"
    ),
}
