"""Finding model, suppression comments, and the machine-readable report.

A *finding* is one rule violation at one source location.  Findings can be
suppressed in-source with a structured comment that **must** carry a
reason (undocumented suppressions are themselves findings):

``# repro-lint: disable=<rule>[,<rule>] -- <reason>``
    Suppresses the listed rules on the same line, or — when the comment
    stands alone on its own line — on the next source line.

``# repro-lint: disable-file=<rule>[,<rule>] -- <reason>``
    Suppresses the listed rules for the whole file (place near the top).

The JSON report (``--json``) is stable and machine-readable so CI can
upload it as an artifact and future tooling can diff runs.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Finding",
    "Suppressions",
    "parse_suppressions",
    "apply_suppressions",
    "report_dict",
    "render_report_json",
]

#: Bumped when the JSON report layout changes.
REPORT_SCHEMA_VERSION = 1

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+?)\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass
class Finding:
    """One rule violation (or suppressed violation) at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: The symbol (class.attr, function, call) the finding is about.
    symbol: str = ""
    suppressed: bool = False
    suppress_reason: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location()}: {self.rule}: {self.message}"


@dataclass
class Suppressions:
    """Parsed suppression directives of one file."""

    #: line number -> {rule: reason} (applies to findings on that line).
    by_line: Dict[int, Dict[str, str]] = field(default_factory=dict)
    #: rule -> reason, applied to the whole file.
    file_level: Dict[str, str] = field(default_factory=dict)
    #: Malformed directives (missing ``-- reason``): list of (line, text).
    undocumented: List[Tuple[int, str]] = field(default_factory=list)

    def lookup(self, rule: str, line: int) -> Optional[str]:
        """The reason suppressing ``rule`` at ``line``, or ``None``."""
        if rule in self.file_level:
            return self.file_level[rule]
        rules = self.by_line.get(line)
        if rules is None:
            return None
        return rules.get(rule)


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``repro-lint`` suppression directives from raw source text.

    Line-based on purpose: directives live in comments, and matching raw
    lines keeps the parser independent of tokenization quirks.  A
    directive on a comment-only line applies to the next line; one
    trailing a statement applies to its own line.
    """
    out = Suppressions()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE_RE.search(text)
        if match is None:
            continue
        rules = [r.strip() for r in match.group("rules").split(",")
                 if r.strip()]
        reason = (match.group("reason") or "").strip()
        if not reason:
            out.undocumented.append((lineno, text.strip()))
            continue
        if match.group("kind") == "disable-file":
            for rule in rules:
                out.file_level.setdefault(rule, reason)
            continue
        target = lineno
        if text.lstrip().startswith("#"):
            target = lineno + 1  # standalone comment: guards the next line
        entry = out.by_line.setdefault(target, {})
        for rule in rules:
            entry.setdefault(rule, reason)
    return out


def apply_suppressions(findings: List[Finding],
                       suppressions: Suppressions,
                       path: str) -> List[Finding]:
    """Mark suppressed findings and append bad-suppression findings.

    Returns the combined list (suppressed findings are kept — the JSON
    report records them so reviewers can audit every suppression).
    """
    for finding in findings:
        reason = suppressions.lookup(finding.rule, finding.line)
        if reason is not None:
            finding.suppressed = True
            finding.suppress_reason = reason
    for lineno, text in suppressions.undocumented:
        findings.append(Finding(
            rule="bad-suppression",
            path=path,
            line=lineno,
            col=0,
            message=(
                "suppression without a reason; write "
                "'# repro-lint: disable=<rule> -- <why this is safe>'"
            ),
            symbol=text,
        ))
    return findings


def report_dict(findings: List[Finding], checked_files: List[str],
                paths: List[str]) -> dict:
    """Assemble the machine-readable report structure."""
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    by_rule: Dict[str, int] = {}
    for finding in active:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return {
        "tool": "repro-lint",
        "schema_version": REPORT_SCHEMA_VERSION,
        "paths": list(paths),
        "files_checked": len(checked_files),
        "summary": {
            "findings": len(active),
            "suppressed": len(suppressed),
            "by_rule": dict(sorted(by_rule.items())),
        },
        "findings": [asdict(f) for f in active],
        "suppressed": [asdict(f) for f in suppressed],
    }


def render_report_json(findings: List[Finding], checked_files: List[str],
                       paths: List[str]) -> str:
    return json.dumps(report_dict(findings, checked_files, paths),
                      indent=2, sort_keys=False) + "\n"
