"""Invariant-aware static analysis and runtime sanitizers.

The concurrent subsystems of this reproduction (the thread/process executor
pools, the shared-memory plan registry, the single-flight plan cache, the
serving gateway's runner thread) rely on a small set of invariants that the
type system cannot express:

* plans are frozen and content-addressed — no mutation after publication;
* lock-guarded state is only touched under its lock, in its owning class;
* every shared-memory segment is paired with a finalizer or exit sweep;
* hot paths are deterministic — clocks and rngs are injected, never global;
* no ``concurrent.futures`` result is silently dropped.

This package encodes those invariants once and checks them mechanically:

* :mod:`repro.analysis.lint` — ``repro_lint``, an AST-based checker run as
  ``python -m repro.analysis.lint src/`` (wired into CI).  Rules live in
  :mod:`repro.analysis.checkers`; the repo-specific registry of guarded
  attributes and plan-artifact types in :mod:`repro.analysis.guarded`.
* :mod:`repro.analysis.sanitizer` — a runtime concurrency sanitizer
  (enabled with ``REPRO_SANITIZE=1``): lock-order-inversion detection
  across the pools plus a plan-mutation canary that checksums plan
  artifacts around every executor dispatch.
"""

__all__ = ["lint", "sanitizer"]
