"""Closed-form instruction/memory profiles of the mpGEMM kernels.

The roofline cost model (:mod:`repro.hardware.cost_model`) needs, for every
kernel invocation, (a) how many vector instructions of each category are
issued and (b) how many bytes move between DRAM and the core.  Executing the
paper-scale problems instruction-by-instruction in Python is infeasible, so
this module provides closed-form counts:

* :func:`profile_tmac_gemm` — derived directly from Algorithm 1: one lookup
  per ``lanes`` weight indices per bit (two if the table is fp16 and split),
  one aggregation add per lookup, nibble unpacking, table precomputation and
  scale application.  Unit tests check the lookup/add counts against the
  executable :class:`repro.simd.machine.SIMDMachine` on small tiles.
* :func:`profile_dequant_gemm` — the llama.cpp-style baseline: weight
  decoding plus fused multiply-accumulate.  The per-weight decode costs are
  *calibration constants* representative of llama.cpp's kernels (Q4_0 /
  Q3_K / Q2_K / IQ1): decoding cost is roughly flat from 4 to 2 bits and
  noticeably worse at 3 bits, which is exactly the observation that motivates
  the paper (Figure 6 discussion, Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from typing import Optional

from repro.core.config import TMACConfig
from repro.core.lut import lut_storage_bytes
from repro.core.tiling import TileConfig, default_tile_config
from repro.simd.isa import InstructionCategory as IC
from repro.simd.isa import InstructionSet, NEON

__all__ = [
    "InstructionProfile",
    "profile_tmac_gemm",
    "profile_dequant_gemm",
    "DEQUANT_DECODE_INSTR_PER_WEIGHT",
]


@dataclass
class InstructionProfile:
    """Vector-instruction and DRAM-traffic footprint of one kernel call.

    Attributes
    ----------
    counts:
        Vector instructions issued, by :class:`InstructionCategory`.
    dram_read_bytes / dram_write_bytes:
        Bytes moved between DRAM and the cache hierarchy.
    tables_in_registers:
        Whether the lookup tables stay resident in vector registers
        (LUT-centric tiling).  When ``False`` the cost model degrades the
        lookup throughput (table accesses hit L1/L2 instead).
    sequential_weight_access:
        Whether weight tiles are stored contiguously (offline permutation).
        When ``False`` the cost model derates the achievable DRAM bandwidth.
    """

    counts: Dict[str, float] = field(default_factory=dict)
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    tables_in_registers: bool = True
    sequential_weight_access: bool = True
    description: str = ""

    def add(self, category: str, amount: float) -> None:
        """Accumulate ``amount`` instructions of ``category``."""
        if category not in IC.ALL:
            raise KeyError(f"unknown instruction category {category!r}")
        self.counts[category] = self.counts.get(category, 0.0) + float(amount)

    def total_instructions(self) -> float:
        """Total vector instructions across all categories."""
        return float(sum(self.counts.values()))

    def scaled(self, factor: float) -> "InstructionProfile":
        """A copy with instruction counts and traffic multiplied by ``factor``."""
        return InstructionProfile(
            counts={k: v * factor for k, v in self.counts.items()},
            dram_read_bytes=self.dram_read_bytes * factor,
            dram_write_bytes=self.dram_write_bytes * factor,
            tables_in_registers=self.tables_in_registers,
            sequential_weight_access=self.sequential_weight_access,
            description=self.description,
        )

    def merged(self, other: "InstructionProfile") -> "InstructionProfile":
        """Sum of two profiles (conservative AND of the layout flags)."""
        counts = dict(self.counts)
        for key, value in other.counts.items():
            counts[key] = counts.get(key, 0.0) + value
        return InstructionProfile(
            counts=counts,
            dram_read_bytes=self.dram_read_bytes + other.dram_read_bytes,
            dram_write_bytes=self.dram_write_bytes + other.dram_write_bytes,
            tables_in_registers=self.tables_in_registers and other.tables_in_registers,
            sequential_weight_access=(
                self.sequential_weight_access and other.sequential_weight_access
            ),
            description=self.description or other.description,
        )


def profile_tmac_gemm(
    n: int,
    m: int,
    k: int,
    config: TMACConfig,
    isa: InstructionSet = NEON,
    group_size: int = 128,
    tile_config: Optional[TileConfig] = None,
) -> InstructionProfile:
    """Instruction/memory profile of a T-MAC mpGEMM ``[N,K] x [M,K]^T``.

    Derivation (per Algorithm 1):

    * ``M*K/g`` table indices per bit plane; each lookup instruction serves
      ``lanes`` indices (the 16-entry table fits one TBL/PSHUF register) and
      fp16 tables need a low/high pair of lookups,
    * one aggregation add per lookup (int8 ``rhadd`` with fast aggregation,
      widening int16 add with exact aggregation, fp add for fp16 tables),
    * nibble unpacking of the packed indices (tripled when the offline
      interleaving is disabled, because extra shuffles must reorder bytes),
    * table precomputation over ``N * K/g * 2^g`` entries (halved by mirror
      consolidation), vectorized along K/g,
    * per-quantization-group scale application and bit-serial recombination,
    * partial-sum spill traffic: because the temporal axis K is walked first,
      the ``[N, M]`` partial outputs are written back and re-read once per
      ``K_tk`` reduction tile — a larger reduction tile (more on-chip LUTs,
      the knob the tuner searches over) reduces that traffic.
    """
    tile = tile_config or config.tile_config or default_tile_config(
        config.bits, config.g, isa.width_bits, isa.num_registers, n
    )
    profile = InstructionProfile(
        tables_in_registers=config.tiling,
        sequential_weight_access=config.permute_weights,
        description=f"tmac[{config.name}] {n}x{k}x{m} b={config.bits}",
    )
    lanes = isa.lanes_int8
    lanes_fp = isa.lanes_fp16
    bits = config.bits
    g = config.g

    indices_per_bit = m * k / g
    luts_per_lookup = 1 if config.table_quantization else 2

    lookups = bits * n * indices_per_bit / lanes * luts_per_lookup
    profile.add(IC.LOOKUP, lookups)

    if config.fast_aggregation:
        profile.add(IC.ADD_INT8, lookups)
    elif config.table_quantization:
        profile.add(IC.ADD_INT16, lookups)
    else:
        profile.add(IC.ADD_FP, lookups)

    # Unpacking the packed uint4 indices: one AND / SHR+AND per vector of
    # `lanes` indices.  Without interleaving, additional shuffles are needed
    # to restore the index order after little-endian unpacking.
    unpack = bits * n * indices_per_bit / lanes
    profile.add(IC.UNPACK, unpack)
    if not config.interleave_weights:
        profile.add(IC.SHUFFLE, 2.0 * unpack)

    # Online table precomputation.
    stored_entries = 1 << g
    if config.mirror_consolidation:
        stored_entries //= 2
    table_entries = n * (k / g) * stored_entries
    profile.add(IC.ADD_FP, table_entries / lanes_fp)
    if config.table_quantization:
        profile.add(IC.CONVERT, table_entries / lanes)
    if isa.name == "avx2":
        # Register swizzling (vpblendvb/vpermd/vpshufb) for contiguous
        # write-back of the precomputed tables (Section 4).
        profile.add(IC.SHUFFLE, 3.0 * table_entries / (lanes * 4))

    # Scale application + bit-serial recombination per quantization group.
    scale_values = n * m * (k / group_size)
    profile.add(IC.MUL_FP, scale_values / lanes_fp)
    profile.add(IC.ADD_FP, (bits + 1) * scale_values / lanes_fp)
    profile.add(IC.CONVERT, scale_values / lanes_fp)

    # Loads / stores (weights dominate; activations and outputs are small).
    width_bytes = isa.width_bits // 8
    weight_bytes = m * k * bits / 8
    scale_bytes = 2 * m * (k / group_size)
    act_bytes = n * k * (2 if config.act_dtype == "float16" else 4)
    out_bytes = n * m * 4
    profile.add(IC.LOAD, (weight_bytes + scale_bytes) * max(1, n) / width_bytes
                + act_bytes / width_bytes)
    profile.add(IC.STORE, out_bytes / width_bytes)

    # Partial-sum writeback (mpGEMM only): when several activation rows are
    # in flight the K-first loop revisits the [N, M] output strip once per
    # reduction tile.  The strip stays cache-resident, so only the extra
    # load/store instructions are charged; a larger reduction tile (more
    # on-chip LUTs — the knob the tuner searches over) reduces them.  For
    # GEMV (N=1) the per-tile accumulators stay in registers.
    if n > 1 and config.tiling:
        k_tiles = max(1, -(-k // max(tile.k_tk, g)))
        partial_bytes = 2.0 * n * m * 4 * max(k_tiles - 1, 0)
        profile.add(IC.LOAD, partial_bytes / (2 * width_bytes))
        profile.add(IC.STORE, partial_bytes / (2 * width_bytes))

    profile.dram_read_bytes = weight_bytes + scale_bytes + act_bytes
    profile.dram_write_bytes = out_bytes
    if not config.tiling:
        # Without the temporal-first axis order the tables for the whole
        # activation slice spill out of registers and are re-read for every
        # output tile.
        lut_bytes = lut_storage_bytes(
            n, k, g, config.mirror_consolidation, config.table_quantization,
            config.act_dtype,
        )
        reload_factor = max(1.0, m / 256.0)
        profile.dram_read_bytes += lut_bytes * reload_factor
        profile.dram_write_bytes += lut_bytes
    return profile


#: Vector instructions spent *decoding* one weight in llama.cpp-style
#: kernels, by bit width.  Calibration constants representative of the
#: measured behaviour the paper reports: 2-bit decoding is no cheaper than
#: 4-bit (the packing is more awkward), 3-bit is ~15-25% more expensive
#: because 8 is not divisible by 3 (separate 2-bit + 1-bit planes must be
#: reassembled), and there is no native 1-bit kernel (llama.cpp's 1-bit cost
#: is deduced from the 2-bit kernel, as the paper does for Figure 6/7).
DEQUANT_DECODE_INSTR_PER_WEIGHT = {
    1: 0.42,
    2: 0.42,
    3: 0.52,
    4: 0.39,
}

#: Multiply-accumulate vector instructions per weight (block dot product
#: against the int8-quantized activations plus the widening accumulate).
#: Like the decode costs above, this is a per-weight calibration constant
#: representative of llama.cpp's measured kernels rather than an ideal
#: instruction count, and is deliberately ISA-independent (llama.cpp's AVX2
#: kernels do not extract the full 2x lane advantage over NEON).
_DEQUANT_MAC_INSTR_PER_WEIGHT = 0.19


def profile_dequant_gemm(
    n: int,
    m: int,
    k: int,
    bits: int,
    isa: InstructionSet = NEON,
    group_size: int = 32,
) -> InstructionProfile:
    """Instruction/memory profile of a dequantization-based mpGEMM.

    Models llama.cpp's approach: stream the packed low-bit weights, decode
    them to a hardware data type (int8/fp16), then run an ordinary
    dot-product against the (block-quantized) activations, and rescale per
    quantization block.  The decode cost per weight is constant in ``N`` per
    streamed weight but must be paid for *every* activation row because the
    decoded weights are never materialized in DRAM.
    """
    if bits not in DEQUANT_DECODE_INSTR_PER_WEIGHT:
        raise ValueError(
            f"no llama.cpp-style decode cost for bits={bits}; "
            f"known: {sorted(DEQUANT_DECODE_INSTR_PER_WEIGHT)}"
        )
    profile = InstructionProfile(
        tables_in_registers=True,
        sequential_weight_access=True,
        description=f"dequant {n}x{k}x{m} b={bits}",
    )
    lanes = isa.lanes_int8
    lanes_fp = isa.lanes_fp16
    weights = float(m) * float(k)

    profile.add(IC.UNPACK, n * weights * DEQUANT_DECODE_INSTR_PER_WEIGHT[bits])
    profile.add(IC.ADD_FP, n * weights * _DEQUANT_MAC_INSTR_PER_WEIGHT)
    profile.add(IC.CONVERT, n * weights / (2 * 16))

    # Activation block quantization (Q8_0-style) once per activation row.
    profile.add(IC.CONVERT, 2.0 * n * k / lanes)
    profile.add(IC.MUL_FP, n * k / lanes_fp)

    # Per-block scale application.
    scale_values = n * m * (k / group_size)
    profile.add(IC.MUL_FP, scale_values / lanes_fp)
    profile.add(IC.ADD_FP, scale_values / lanes_fp)

    width_bytes = isa.width_bits // 8
    weight_bytes = weights * bits / 8
    scale_bytes = 2 * m * (k / group_size)
    act_bytes = n * k * 2
    out_bytes = n * m * 4
    profile.add(IC.LOAD, (weight_bytes + scale_bytes) * max(1, n) / width_bytes
                + act_bytes / width_bytes)
    profile.add(IC.STORE, out_bytes / width_bytes)

    profile.dram_read_bytes = weight_bytes + scale_bytes + act_bytes
    profile.dram_write_bytes = out_bytes
    return profile
