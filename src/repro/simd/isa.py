"""Instruction-set descriptions used by the SIMD machine and the cost model.

Only the properties that matter for the paper's analysis are modeled:

* the vector width (128-bit NEON, 256-bit AVX2),
* the number of architectural vector registers (32 / 16),
* the per-category relative throughput (how many of these operations a core
  can issue per cycle), which is what makes int8 aggregation twice as fast
  as int16 and the ``rhadd`` fast-aggregation path attractive,
* the 8-bit in-register table lookup reach (16 entries per 128-bit lane).

The numbers are not microarchitecturally exact for any single core; they are
representative ratios (lookup/arith/widening/etc.) that the paper's argument
relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["InstructionCategory", "InstructionSet", "NEON", "AVX2", "isa_for_name"]


class InstructionCategory:
    """Symbolic instruction categories counted by the kernel profiles."""

    LOOKUP = "lookup"            # TBL / PSHUFB
    ADD_INT8 = "add_int8"        # int8 add / rhadd (fast aggregation)
    ADD_INT16 = "add_int16"      # widening int16 add (exact aggregation)
    ADD_FP = "add_fp"            # fp16/fp32 vector add
    MUL_FP = "mul_fp"            # fp multiply (scales)
    DOT_INT8 = "dot_int8"        # int8 dot product (sdot / vpdpbusd-like)
    UNPACK = "unpack"            # AND / SHR+AND nibble unpack
    SHUFFLE = "shuffle"          # permutes / swizzles / interleave fixups
    CONVERT = "convert"          # int <-> fp conversions, widen/narrow
    LOAD = "load"                # vector loads
    STORE = "store"              # vector stores
    SCALAR = "scalar"            # loop/address overhead

    ALL = (
        LOOKUP,
        ADD_INT8,
        ADD_INT16,
        ADD_FP,
        MUL_FP,
        DOT_INT8,
        UNPACK,
        SHUFFLE,
        CONVERT,
        LOAD,
        STORE,
        SCALAR,
    )


@dataclass(frozen=True)
class InstructionSet:
    """A SIMD instruction set as seen by the cost model.

    Attributes
    ----------
    name:
        "neon" or "avx2".
    width_bits:
        Vector register width.
    num_registers:
        Architectural vector register count (spilling beyond this is what
        the tiling configuration must avoid).
    lookup_reach:
        Number of 8-bit table entries addressable by a single lookup
        instruction *per 128-bit lane* (16 for both TBL and PSHUFB).
    throughput:
        Instructions issued per cycle per core, by category.  Ratios encode
        the paper's observations: int8 adds are twice as fast as widening
        int16 adds; lookups issue at the same rate as simple int8 ALU ops.
    """

    name: str
    width_bits: int
    num_registers: int
    lookup_reach: int = 16
    throughput: Dict[str, float] = field(default_factory=dict)

    @property
    def lanes_int8(self) -> int:
        """Number of 8-bit lanes per vector register."""
        return self.width_bits // 8

    @property
    def lanes_fp16(self) -> int:
        """Number of 16-bit lanes per vector register."""
        return self.width_bits // 16

    def throughput_of(self, category: str) -> float:
        """Issue rate (instructions/cycle/core) for an instruction category."""
        if category not in self.throughput:
            raise KeyError(f"unknown instruction category {category!r}")
        return self.throughput[category]


_DEFAULT_THROUGHPUT = {
    InstructionCategory.LOOKUP: 2.0,
    InstructionCategory.ADD_INT8: 2.0,
    InstructionCategory.ADD_INT16: 1.0,
    InstructionCategory.ADD_FP: 2.0,
    InstructionCategory.MUL_FP: 2.0,
    InstructionCategory.DOT_INT8: 2.0,
    InstructionCategory.UNPACK: 2.0,
    InstructionCategory.SHUFFLE: 2.0,
    InstructionCategory.CONVERT: 1.0,
    InstructionCategory.LOAD: 2.0,
    InstructionCategory.STORE: 1.0,
    InstructionCategory.SCALAR: 4.0,
}


NEON = InstructionSet(
    name="neon",
    width_bits=128,
    num_registers=32,
    lookup_reach=16,
    throughput=dict(_DEFAULT_THROUGHPUT),
)

AVX2 = InstructionSet(
    name="avx2",
    width_bits=256,
    num_registers=16,
    lookup_reach=16,
    throughput=dict(_DEFAULT_THROUGHPUT),
)


def isa_for_name(name: str) -> InstructionSet:
    """Look up an instruction set by name ("neon" or "avx2")."""
    table = {"neon": NEON, "avx2": AVX2}
    if name not in table:
        raise KeyError(f"unknown ISA {name!r}; expected one of {sorted(table)}")
    return table[name]
