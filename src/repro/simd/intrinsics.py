"""Hardware intrinsics for table lookup and fast aggregation (paper Table 1).

The table is data, not behaviour: it records which concrete instruction each
ISA uses for the two operations T-MAC leans on, and is exposed so the
documentation/benchmark layer can print the same table the paper shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["IntrinsicEntry", "INTRINSICS_TABLE", "intrinsics_for"]


@dataclass(frozen=True)
class IntrinsicEntry:
    """Lookup / fast-aggregation intrinsic names for one instruction set."""

    instruction_set: str
    lookup: str
    fast_aggregation: str
    lookup_width_bits: int
    notes: str = ""


INTRINSICS_TABLE: Dict[str, IntrinsicEntry] = {
    "neon": IntrinsicEntry(
        instruction_set="NEON",
        lookup="vqtbl1q_u8",
        fast_aggregation="vrhaddq_u8",
        lookup_width_bits=128,
        notes="128-bit TBL exactly holds the g=4 table (16 int8 entries).",
    ),
    "avx2": IntrinsicEntry(
        instruction_set="AVX2",
        lookup="_mm256_shuffle_epi8",
        fast_aggregation="_mm256_avg_epu8",
        lookup_width_bits=256,
        notes=(
            "The 256-bit shuffle operates on two independent 128-bit lanes, "
            "so the 16-entry table is duplicated into both halves and 32 "
            "indices are looked up per instruction."
        ),
    ),
}


def intrinsics_for(isa_name: str) -> IntrinsicEntry:
    """Return the Table 1 row for an instruction set name ("neon"/"avx2")."""
    key = isa_name.lower()
    if key not in INTRINSICS_TABLE:
        raise KeyError(
            f"unknown ISA {isa_name!r}; expected one of {sorted(INTRINSICS_TABLE)}"
        )
    return INTRINSICS_TABLE[key]
