"""SIMD substrate: instruction sets, a register-level machine model and
instruction-count profiles for the T-MAC and dequantization inner loops.

The paper's kernels are hand-scheduled NEON/AVX2 code generated through TVM.
This package substitutes two things for that:

* :mod:`repro.simd.machine` — a small register machine that numerically
  executes the T-MAC basic block (unpack, table lookup, aggregate) using the
  modeled instructions, while counting every instruction issued.  Unit tests
  check that the machine's numeric result equals the numpy kernel's, which
  ties the instruction counts to the real algorithm.
* :mod:`repro.simd.profile` — closed-form instruction-count profiles for the
  full kernels (too large to execute instruction-by-instruction in Python),
  validated against the machine on small tiles.  These profiles feed the
  roofline cost model in :mod:`repro.hardware`.

:mod:`repro.simd.isa` describes the NEON and AVX2 instruction sets, and
:mod:`repro.simd.intrinsics` records the paper's Table 1 (lookup and fast
aggregation intrinsics per ISA).
"""

from repro.simd.isa import AVX2, NEON, InstructionSet
from repro.simd.machine import SIMDMachine
from repro.simd.profile import (
    InstructionProfile,
    profile_dequant_gemm,
    profile_tmac_gemm,
)

__all__ = [
    "NEON",
    "AVX2",
    "InstructionSet",
    "SIMDMachine",
    "InstructionProfile",
    "profile_tmac_gemm",
    "profile_dequant_gemm",
]
