"""A small SIMD register machine that executes kernel basic blocks.

The machine works on numpy vectors whose length equals the ISA's 8-bit lane
count and exposes the handful of instructions the T-MAC and llama.cpp inner
loops are built from: in-register table lookup (``TBL``/``PSHUFB``), nibble
unpacking (``AND``/``SHR``), widening adds, rounding-average adds
(``vrhadd``/``avg``) and int8 dot products.

Every instruction issued is counted by category, so executing a basic block
yields both the numeric result *and* the instruction profile.  Unit tests
assert that

* the numeric result matches the plain numpy computation, and
* the instruction counts match the closed-form profiles in
  :mod:`repro.simd.profile` for the same block,

which is what lets the analytic profiles stand in for execution on the
paper-scale problems.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

import numpy as np

from repro.simd.isa import AVX2, NEON, InstructionCategory, InstructionSet

__all__ = ["SIMDMachine", "tmac_block_gemv", "dequant_block_gemv"]


class SIMDMachine:
    """Vector execution engine with per-category instruction counting.

    Parameters
    ----------
    isa:
        The instruction set to model (:data:`repro.simd.isa.NEON` or
        :data:`repro.simd.isa.AVX2`).  Determines the lane count of every
        vector operand.
    """

    def __init__(self, isa: InstructionSet = NEON):
        self.isa = isa
        self.counts: Counter = Counter()

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #

    @property
    def lanes(self) -> int:
        """Number of 8-bit lanes per vector register."""
        return self.isa.lanes_int8

    def reset(self) -> None:
        """Clear the instruction counters."""
        self.counts.clear()

    def instruction_counts(self) -> Dict[str, int]:
        """Copy of the per-category instruction counts."""
        return dict(self.counts)

    def total_instructions(self) -> int:
        """Total number of vector instructions issued."""
        return int(sum(self.counts.values()))

    def _count(self, category: str, amount: int = 1) -> None:
        self.counts[category] += amount

    def _vec(self, values, dtype) -> np.ndarray:
        arr = np.asarray(values, dtype=dtype)
        if arr.ndim != 1 or arr.size != self.lanes:
            raise ValueError(
                f"operand must be a 1-D vector of {self.lanes} lanes, "
                f"got shape {arr.shape}"
            )
        return arr

    # ------------------------------------------------------------------ #
    # Instructions
    # ------------------------------------------------------------------ #

    def load(self, values, dtype=np.uint8) -> np.ndarray:
        """Vector load of one register's worth of data."""
        self._count(InstructionCategory.LOAD)
        return self._vec(values, dtype)

    def store(self, values) -> np.ndarray:
        """Vector store; returns the stored values."""
        self._count(InstructionCategory.STORE)
        return np.asarray(values).copy()

    def and_mask(self, a: np.ndarray, mask: int) -> np.ndarray:
        """Bitwise AND with an immediate mask (nibble extraction)."""
        self._count(InstructionCategory.UNPACK)
        return (np.asarray(a, dtype=np.uint8) & mask).astype(np.uint8)

    def shr(self, a: np.ndarray, shift: int) -> np.ndarray:
        """Logical shift right by an immediate."""
        self._count(InstructionCategory.UNPACK)
        return (np.asarray(a, dtype=np.uint8) >> shift).astype(np.uint8)

    def tbl(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """In-register table lookup (NEON ``vqtbl1q_u8`` / AVX2 ``pshufb``).

        ``table`` holds 16 int8 entries (the g=4 lookup table); ``indices``
        is a full vector of 8-bit indices.  Out-of-range indices return 0,
        matching the NEON semantics.  On AVX2 the same 16-entry table is
        conceptually duplicated into both 128-bit lanes, so a single
        instruction still serves a full 32-lane index vector.
        """
        self._count(InstructionCategory.LOOKUP)
        tab = np.asarray(table, dtype=np.int8)
        if tab.size != 16:
            raise ValueError(f"table must have 16 entries, got {tab.size}")
        idx = self._vec(indices, np.uint8)
        out = np.where(idx < 16, tab[idx % 16], 0)
        return out.astype(np.int8)

    def add_int16(self, acc: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Widening accumulate: int8 values added into int16 accumulators."""
        self._count(InstructionCategory.ADD_INT16)
        return (
            np.asarray(acc, dtype=np.int16) + np.asarray(values, dtype=np.int16)
        ).astype(np.int16)

    def add_int32(self, acc: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Widening accumulate into int32 accumulators."""
        self._count(InstructionCategory.ADD_INT16)
        return (
            np.asarray(acc, dtype=np.int32) + np.asarray(values, dtype=np.int32)
        ).astype(np.int32)

    def rhadd_i8(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Signed rounding halving add (``vrhaddq_s8``): ``(a + b + 1) >> 1``."""
        self._count(InstructionCategory.ADD_INT8)
        wide = np.asarray(a, dtype=np.int16) + np.asarray(b, dtype=np.int16) + 1
        return (wide >> 1).astype(np.int8)

    def add_fp(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Floating-point vector add."""
        self._count(InstructionCategory.ADD_FP)
        return np.asarray(a, dtype=np.float32) + np.asarray(b, dtype=np.float32)

    def mul_fp(self, a: np.ndarray, b) -> np.ndarray:
        """Floating-point vector multiply (scale application)."""
        self._count(InstructionCategory.MUL_FP)
        return np.asarray(a, dtype=np.float32) * np.asarray(b, dtype=np.float32)

    def convert(self, values: np.ndarray, dtype) -> np.ndarray:
        """Lane-wise type conversion (widen/narrow, int <-> fp)."""
        self._count(InstructionCategory.CONVERT)
        return np.asarray(values).astype(dtype)

    def dot_int8(self, acc: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Int8 dot product (``sdot``-style): 4-element dot per 32-bit lane.

        ``a`` and ``b`` are full int8 vectors; each group of 4 adjacent
        products is summed into the corresponding int32 accumulator lane.
        """
        self._count(InstructionCategory.DOT_INT8)
        av = np.asarray(a, dtype=np.int32)
        bv = np.asarray(b, dtype=np.int32)
        prod = (av * bv).reshape(-1, 4).sum(axis=1)
        return (np.asarray(acc, dtype=np.int32) + prod).astype(np.int32)


def tmac_block_gemv(
    machine: SIMDMachine,
    luts: np.ndarray,
    indices: np.ndarray,
    fast_aggregation: bool = False,
) -> np.ndarray:
    """Execute one T-MAC bit-plane block on the SIMD machine.

    Computes, for every output row ``m``, ``sum_j luts[j, indices[m, j]]`` —
    the inner loop of Algorithm 1 for one bit plane and one weight
    quantization group — using only machine instructions: a vector load of
    the packed indices, nibble unpacking, ``TBL`` lookups and widening adds
    (or a rounding-average tree when ``fast_aggregation``).

    Parameters
    ----------
    machine:
        The :class:`SIMDMachine` to execute on (counts are accumulated).
    luts:
        ``[J, 16]`` int8 quantized tables (one per activation group).
    indices:
        ``[M, J]`` uint8 weight indices with values in ``[0, 16)``.
        ``M`` must be a multiple of the machine's lane count.

    Returns
    -------
    np.ndarray
        Aggregated per-output values: exact int32 sums, or the fast
        aggregation's float estimate when ``fast_aggregation`` is set.
    """
    luts = np.asarray(luts, dtype=np.int8)
    idx = np.asarray(indices, dtype=np.uint8)
    m, j_count = idx.shape
    lanes = machine.lanes
    if m % lanes != 0:
        raise ValueError(f"M={m} must be a multiple of the lane count {lanes}")
    if luts.shape != (j_count, 16):
        raise ValueError(f"luts must have shape [{j_count}, 16], got {luts.shape}")

    out = np.zeros(m, dtype=np.float64)
    for m0 in range(0, m, lanes):
        if fast_aggregation:
            looked_up = []
            for j in range(j_count):
                vec = machine.load(idx[m0:m0 + lanes, j])
                looked_up.append(machine.tbl(luts[j], vec))
            # Rounding-average tree over the J looked-up vectors.
            level = looked_up
            while len(level) > 1:
                if len(level) % 2 == 1:
                    level = level + [level[-1]]
                level = [
                    machine.rhadd_i8(level[i], level[i + 1])
                    for i in range(0, len(level), 2)
                ]
            depth = int(np.ceil(np.log2(max(2, j_count))))
            estimate = (
                level[0].astype(np.float64) - 0.25 * depth
            ) * j_count
            out[m0:m0 + lanes] = estimate
        else:
            acc = np.zeros(lanes, dtype=np.int32)
            for j in range(j_count):
                vec = machine.load(idx[m0:m0 + lanes, j])
                values = machine.tbl(luts[j], vec)
                acc = machine.add_int32(acc, values)
            out[m0:m0 + lanes] = machine.store(acc)
    return out


def dequant_block_gemv(
    machine: SIMDMachine,
    weight_codes: np.ndarray,
    act_codes: np.ndarray,
) -> np.ndarray:
    """Execute one llama.cpp-style int8 dot-product block on the machine.

    Computes ``sum_k weight_codes[m, k] * act_codes[k]`` for every output
    row using vector loads and int8 dot-product instructions — the
    dequantization baseline's inner loop after weights have been decoded to
    int8 (the decode itself is counted by the analytic profile).

    Parameters
    ----------
    weight_codes:
        ``[M, K]`` int8 decoded weights; ``K`` must be a multiple of the
        lane count.
    act_codes:
        ``[K]`` int8 quantized activations.
    """
    w = np.asarray(weight_codes, dtype=np.int8)
    a = np.asarray(act_codes, dtype=np.int8)
    m, k = w.shape
    lanes = machine.lanes
    if k % lanes != 0:
        raise ValueError(f"K={k} must be a multiple of the lane count {lanes}")

    out = np.zeros(m, dtype=np.int64)
    for row in range(m):
        acc = np.zeros(lanes // 4, dtype=np.int32)
        for k0 in range(0, k, lanes):
            wv = machine.load(w[row, k0:k0 + lanes], dtype=np.int8)
            av = machine.load(a[k0:k0 + lanes], dtype=np.int8)
            acc = machine.dot_int8(acc, wv, av)
        out[row] = int(machine.store(acc).sum())
    return out
