"""Reproduction of T-MAC: CPU Renaissance via Table Lookup for Low-Bit LLM
Deployment on Edge (EuroSys 2025).

The package is organised as a set of subsystems:

``repro.core``
    The paper's primary contribution: the LUT-based mixed-precision GEMM
    (mpGEMM) kernel — bit-serial decomposition, online lookup-table
    precomputation, mirror consolidation, table quantization, LUT-centric
    data layout (tiling, permutation, interleaving) and fast aggregation.

    The kernel is split into an offline :class:`~repro.core.plan.KernelPlan`
    (content-addressed, memoized in a process-wide plan cache) and online
    executors (vectorized by default, with the loop-based reference
    selectable via ``TMACConfig(executor="loop")``).

``repro.quant``
    Weight/activation quantization substrate (uniform 1-4 bit, BitNet
    ternary, int8 dynamic activation quantization).

``repro.backends``
    The backend registry: reference, llama.cpp-style dequantization and
    T-MAC numeric backends plus BLAS/GPU/NPU cost-model backends behind one
    ``register_backend`` / ``get_backend`` interface.

``repro.baselines``
    Reference and dequantization-based (llama.cpp-style) kernels, plus BLAS,
    GPU and NPU cost baselines (wrapped by ``repro.backends``).

``repro.serving``
    Production-style serving on the numerical path: per-request
    :class:`~repro.serving.session.InferenceSession` state and a
    continuous-batching :class:`~repro.serving.engine.ServingEngine` that
    coalesces concurrent decode steps into one batched mpGEMM per layer,
    scheduling KV memory through ``repro.kvcache`` when given a byte
    budget.

``repro.kvcache``
    Paged KV-cache management: a refcounted block allocator over a fixed
    byte budget, a token-keyed prefix cache sharing physical pages between
    requests, and :class:`~repro.kvcache.paged.PagedKVCache`, a drop-in
    for the per-layer :class:`~repro.llm.layers.KVCache`.

``repro.server``
    The network service layer over ``repro.serving``: an asyncio HTTP
    gateway (OpenAI-style ``/v1/completions`` with SSE token streaming,
    ``/healthz``, Prometheus ``/metrics``), an engine-runner thread with
    per-token stream hooks, and bounded admission with deadlines,
    priorities and 429 backpressure.  Imported lazily — ``from
    repro.server import serve_model`` — to keep the kernel-only import
    path light.

``repro.simd``
    A SIMD instruction-counting machine that executes the T-MAC and the
    dequantization inner loops with modeled TBL/PSHUF/rhadd instructions.

``repro.hardware`` / ``repro.energy``
    Edge-device catalogue (paper Tables 2 and 6), roofline latency model and
    power/energy model.

``repro.llm``
    Transformer substrate (Llama-2-7B/13B and BitNet-3B architectures, a
    runnable numpy transformer, KV-cache decode loop and an analytic
    end-to-end throughput estimator).

``repro.eval`` / ``repro.tuning`` / ``repro.workloads``
    Kernel/model error analysis, tile-configuration tuning and the workload
    shapes used throughout the paper's evaluation.
"""

from repro.backends import get_backend, list_backends, register_backend
from repro.core.config import TMACConfig
from repro.core.gemm import tmac_gemm, tmac_gemv
from repro.core.kernel import TMACKernel
from repro.core.plan import (
    KernelPlan,
    clear_plan_cache,
    get_plan,
    plan_cache_stats,
)
from repro.kvcache import PagePool
from repro.quant.uniform import QuantizedWeight, quantize_weights
from repro.serving import InferenceSession, ServingEngine

__version__ = "0.2.0"

__all__ = [
    "TMACConfig",
    "TMACKernel",
    "KernelPlan",
    "get_plan",
    "clear_plan_cache",
    "plan_cache_stats",
    "tmac_gemm",
    "tmac_gemv",
    "QuantizedWeight",
    "quantize_weights",
    "register_backend",
    "get_backend",
    "list_backends",
    "ServingEngine",
    "InferenceSession",
    "PagePool",
    "__version__",
]
