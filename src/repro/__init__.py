"""Reproduction of T-MAC: CPU Renaissance via Table Lookup for Low-Bit LLM
Deployment on Edge (EuroSys 2025).

The package is organised as a set of subsystems:

``repro.core``
    The paper's primary contribution: the LUT-based mixed-precision GEMM
    (mpGEMM) kernel — bit-serial decomposition, online lookup-table
    precomputation, mirror consolidation, table quantization, LUT-centric
    data layout (tiling, permutation, interleaving) and fast aggregation.

``repro.quant``
    Weight/activation quantization substrate (uniform 1-4 bit, BitNet
    ternary, int8 dynamic activation quantization).

``repro.baselines``
    Reference and dequantization-based (llama.cpp-style) kernels, plus BLAS,
    GPU and NPU cost baselines.

``repro.simd``
    A SIMD instruction-counting machine that executes the T-MAC and the
    dequantization inner loops with modeled TBL/PSHUF/rhadd instructions.

``repro.hardware`` / ``repro.energy``
    Edge-device catalogue (paper Tables 2 and 6), roofline latency model and
    power/energy model.

``repro.llm``
    Transformer substrate (Llama-2-7B/13B and BitNet-3B architectures, a
    runnable numpy transformer, KV-cache decode loop and an analytic
    end-to-end throughput estimator).

``repro.eval`` / ``repro.tuning`` / ``repro.workloads``
    Kernel/model error analysis, tile-configuration tuning and the workload
    shapes used throughout the paper's evaluation.
"""

from repro.core.config import TMACConfig
from repro.core.gemm import tmac_gemm, tmac_gemv
from repro.core.kernel import TMACKernel
from repro.quant.uniform import QuantizedWeight, quantize_weights

__version__ = "0.1.0"

__all__ = [
    "TMACConfig",
    "TMACKernel",
    "tmac_gemm",
    "tmac_gemv",
    "QuantizedWeight",
    "quantize_weights",
    "__version__",
]
